"""The driver: feed a record stream through sharded worker processes.

Execution model::

    driver                          worker 0..W-1 (processes)
    ------                          -------------------------
    plan shards (router)            build engines for its shards
    route each record ──batches──>  probe/insert under one meter
    send EOF                        flush per batch
    drain matches + summaries <──   sort + stream matches, summary
    merge (sort, sum meters)

Determinism: the stream is routed over ``num_shards`` logical shards
(default ``config.num_workers``) regardless of the physical worker
count; each shard receives its records in arrival order (driver routes
sequentially, per-worker pipes are FIFO, and a worker processes frames
in receive order), so every shard engine performs the identical
operation sequence for any ``workers``/``batch_size``/executor choice.
The merged observables — match rows in ``(timestamp, rid_a, rid_b)``
order, summed integer meter totals — are therefore bit-identical
across configurations, which the differential tests and the ``repro
diff`` fingerprint gate both assert.

Three executors:

* ``"process"`` — real ``multiprocessing`` workers (the point).
* ``"inline"``  — same :class:`ShardWorker` code and codec round-trip,
  driven in-process: the single-core fallback and what the
  differential tests use to cover worker-count grids cheaply.
* :func:`run_serial` — no batching, no codec, direct per-record
  engine calls: the ground truth the other two must reproduce.
"""

from __future__ import annotations

import atexit
import math
import pickle
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import JoinConfig
from repro.core.metering import WorkMeter
from repro.obs.rectrace import (
    DEFAULT_TRACE_SAMPLE,
    EVENT_ID,
    RECTRACE_ARTEFACT,
    RECTRACE_SCHEMA_VERSION,
    TraceRecorder,
    latency_digest,
    latency_metrics,
    trace_to_rows,
    write_rectrace_jsonl,
)
from repro.obs.spans import (
    DRIVER,
    PHASE_ID,
    SPANS_SCHEMA_VERSION,
    SpanRecorder,
    spans_to_rows,
    write_spans_jsonl,
)
from repro.obs.timeseries import (
    DEFAULT_HEARTBEAT_INTERVAL,
    TelemetryRecorder,
)
from repro.parallel.codec import (
    INDEX,
    PROBE,
    TAG_BATCH,
    TAG_DONE,
    TAG_EOF,
    TAG_ERROR,
    TAG_HEARTBEAT,
    TAG_MATCHES,
    TAG_SHM_FRAME,
    TAG_SHM_MATCHES,
    TAG_SPANS,
    TAG_TRACE,
    BatchEncoder,
    MatchRow,
    decode_heartbeat,
    decode_match_batch,
    decode_record_batch,
    decode_shm_descriptor,
    decode_span_frame,
    decode_trace_frame,
    encode_heartbeat,
    encode_record_batch,
    encode_shm_descriptor,
    encode_span_frame,
    encode_trace_frame,
    record_batch_parts,
)
from repro.parallel.merge import (
    merge_matches,
    merge_meters,
    parallel_fingerprint,
    worker_health,
    worker_metrics,
    worker_timeline,
)
from repro.parallel.planner import ShardPlan, plan_shards
from repro.parallel.shm import (
    DEFAULT_RING_BYTES,
    MIN_RING_BYTES,
    RingBuffer,
    ShmRing,
    shm_supported,
)
from repro.parallel.worker import (
    ShardWorker,
    build_shard_engine,
    peak_rss_bytes,
    worker_main,
)
from repro.records import Record

_U32 = struct.Struct("<I")

_SETUP = PHASE_ID["setup"]
_FEED = PHASE_ID["feed"]
_ENCODE = PHASE_ID["encode"]
_PIPE_WRITE = PHASE_ID["pipe_write"]
_SHM_WRITE = PHASE_ID["shm_write"]
_DRAIN = PHASE_ID["drain"]
_MERGE = PHASE_ID["merge"]
_DECODE = PHASE_ID["decode"]

_EV_FEED = EVENT_ID["feed"]
_EV_ENCODE = EVENT_ID["encode"]
_EV_PIPE_WRITE = EVENT_ID["pipe_write"]
_EV_DECODE = EVENT_ID["decode"]

EXECUTORS = ("process", "inline")
#: Batch transports: ``pipe`` ships whole frames through the result
#: pipe (the struct codec); ``shm`` ships the same column bytes through
#: per-worker shared-memory rings and only 21-byte descriptors through
#: the pipe (see :mod:`repro.parallel.shm`). ``"auto"`` is accepted by
#: the runner and resolves to shm for the process executor when the
#: platform supports it.
TRANSPORTS = ("pipe", "shm")


def _unlink_rings(channels) -> None:
    """The atexit backstop (and ``finally`` body): unlink every ring
    segment of one run. Idempotent — double unlinking is a no-op."""
    for pair in channels:
        for ring in pair:
            ring.unlink()


class ParallelWorkerError(RuntimeError):
    """A worker process failed; carries its formatted traceback."""


@dataclass
class ParallelJoinResult:
    """Everything one parallel run produced, already merged."""

    config: JoinConfig
    num_shards: int
    workers: int
    batch_size: int
    executor: str
    records: int
    #: Canonically ordered ``(timestamp, rid_a, rid_b, overlap,
    #: similarity)`` rows — ``rid_a`` is the later (probing) record.
    matches: List[MatchRow]
    operations: Dict[str, float]
    events: Dict[str, float]
    signals: Dict[str, float]
    #: Raw per-shard meter snapshots (summary format of
    #: :meth:`ShardWorker.finish`), for per-shard inspection.
    shard_meters: Dict[int, dict] = field(repr=False)
    #: Per physical worker: ``{"worker", "shards", "records",
    #: "batches", "busy_s", "intervals"}``.
    worker_stats: List[dict] = field(repr=False)
    #: Driver-observed routing fanout: ``{"total", "count", "peak"}``
    #: of the per-record reached-shards fraction.
    routing_fanout: Dict[str, float] = field(repr=False)
    #: Batch transport the run used (``"pipe"`` or ``"shm"``) — purely
    #: a mechanism label: every observable above is transport-invariant.
    transport: str = "pipe"
    #: Monotonic clock value at run start (base for worker intervals).
    started: float = 0.0
    wall_s: float = 0.0
    #: Spans artefact header (``None`` unless the run recorded spans):
    #: schema, wall time, executor/worker/shard shape, sampling stride
    #: and the recorder's own overhead budget per actor.
    span_header: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: Merged driver + worker span dicts, rebased so 0 = run start and
    #: sorted by start time (``None`` unless the run recorded spans).
    span_rows: Optional[List[Dict[str, object]]] = field(default=None, repr=False)
    #: Full telemetry document (header line first) — ``None`` unless
    #: the run was started with telemetry enabled.
    telemetry: Optional[List[Dict[str, object]]] = field(default=None, repr=False)
    #: Record-trace artefact header (``None`` unless tracing was on):
    #: artefact/schema discriminators, run shape, sampling stride,
    #: traced-record count and the per-stage latency digest.
    trace_header: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: Merged driver + worker trace events, rebased so 0 = run start
    #: (``None`` unless tracing was on).
    trace_rows: Optional[List[Dict[str, object]]] = field(default=None, repr=False)

    @property
    def results(self) -> int:
        return len(self.matches)

    @property
    def throughput(self) -> float:
        """Records per wall-clock second (0 for an empty run)."""
        return self.records / self.wall_s if self.wall_s > 0 else 0.0

    def operation(self, name: str) -> float:
        return self.operations.get(name, 0.0)

    def count(self, name: str) -> float:
        return self.events.get(name, 0.0)

    def fingerprint(self) -> Dict[str, object]:
        """``repro diff``-comparable digest (worker-count independent)."""
        return parallel_fingerprint(self)

    def timeline(self):
        """Per-worker busy/idle :class:`TimelineRecorder` (wall time)."""
        return worker_timeline(self)

    def health(self, thresholds=None):
        """Finalized :class:`HealthMonitor` (load skew across workers,
        routing fanout, pipe backpressure / worker starvation, engine
        signals)."""
        return worker_health(self, thresholds)

    def metrics_registry(self):
        """Per-worker wall-clock telemetry as an :class:`ObsRegistry`
        ready for the JSON/Prometheus exporters. When the run traced
        records, the registry also carries per-stage latency
        reservoirs (``rectrace_stage_latency_seconds``)."""
        registry = worker_metrics(self)
        if self.trace_rows is not None:
            latency_metrics(self.trace_rows, registry)
        return registry

    # -- spans ----------------------------------------------------------------
    def spans_document(self) -> List[Dict[str, object]]:
        """The full spans artefact (header line first), as the JSONL
        loader would return it. Raises unless the run was started with
        ``spans=True``."""
        if self.span_header is None or self.span_rows is None:
            raise ValueError(
                "this run recorded no spans "
                "(construct ParallelJoinRunner with spans=True)"
            )
        return [self.span_header] + list(self.span_rows)

    def write_spans(self, path: str) -> int:
        """Dump the spans artefact to ``path``; returns #lines."""
        document = self.spans_document()
        return write_spans_jsonl(path, document[0], document[1:])

    def phase_totals(self) -> Dict[str, object]:
        """Per-actor seconds by phase (see :func:`repro.obs.spans.phase_totals`)."""
        from repro.obs.spans import phase_totals

        return phase_totals(self.spans_document())

    # -- telemetry -----------------------------------------------------------
    def telemetry_document(self) -> List[Dict[str, object]]:
        """The full telemetry artefact (header line first). Raises
        unless the run was started with ``telemetry=True``."""
        if self.telemetry is None:
            raise ValueError(
                "this run recorded no telemetry "
                "(construct ParallelJoinRunner with telemetry=True)"
            )
        return list(self.telemetry)

    def telemetry_samples(self) -> int:
        """Heartbeat samples collected (0 without telemetry)."""
        if self.telemetry is None:
            return 0
        return sum(1 for row in self.telemetry if row.get("kind") == "sample")

    # -- record traces --------------------------------------------------------
    def rectrace_document(self) -> List[Dict[str, object]]:
        """The full record-trace artefact (header line first). Raises
        unless the run was started with ``trace=True``."""
        if self.trace_header is None or self.trace_rows is None:
            raise ValueError(
                "this run traced no records "
                "(construct ParallelJoinRunner with trace=True)"
            )
        return [self.trace_header] + list(self.trace_rows)

    def write_rectrace(self, path: str) -> int:
        """Dump the record-trace artefact to ``path``; returns #lines."""
        document = self.rectrace_document()
        return write_rectrace_jsonl(path, document[0], document[1:])

    def latency_digest(self) -> Dict[str, Dict[str, float]]:
        """Per-stage p50/p95/p99 latency digest of the traced records
        (raises unless the run was started with ``trace=True``)."""
        if self.trace_rows is None:
            raise ValueError(
                "this run traced no records "
                "(construct ParallelJoinRunner with trace=True)"
            )
        return latency_digest(self.trace_rows)


def _corpus_of(stream, records: Sequence[Record]) -> Sequence[Tuple[int, ...]]:
    corpus = getattr(stream, "corpus", None)
    if corpus is not None:
        return corpus
    return [record.tokens for record in records]


class ParallelJoinRunner:
    """Runs one config over real cores. See the module docstring.

    ``workers`` is the physical process count (capped at the shard
    count — an extra process would host zero shards); ``num_shards``
    defaults to ``config.num_workers`` so parallel runs shard the
    stream exactly like the simulated cluster; ``batch_size`` defaults
    to ``config.batch_size``. ``spans=True`` switches on wall-clock
    span recording in the driver and every worker (see
    :mod:`repro.obs.spans`); ``spans_sample`` is the deterministic
    batch-index downsampling stride for the high-rate batch-scoped
    phases (1 = record every batch).

    ``telemetry=True`` (implied by ``telemetry_out`` or an explicit
    ``heartbeat_interval``) switches on the live heartbeat channel
    (see :mod:`repro.obs.timeseries`): each worker samples its rolling
    counters every ``heartbeat_interval`` seconds onto a dedicated
    non-blocking pipe, and the driver aggregates them into a rolling
    time series with online health detection, optionally appended as
    JSONL to ``telemetry_out``. Telemetry is monitoring-plane only —
    every observable stays bit-identical with it on or off.

    ``trace=True`` switches on distributed per-record tracing (see
    :mod:`repro.obs.rectrace`): records with ``rid % trace_sample ==
    0`` are followed across the process boundary — the driver stamps
    feed/encode/pipe-write, the workers stamp
    decode/probe/insert/match-emit — and the merged, clock-rebased
    event rows land on the result (``trace_rows`` /
    ``rectrace_document()`` / ``latency_digest()``). The traced rid
    set is a pure function of rid, so it is identical across worker
    counts, batch sizes and executors; like spans and telemetry,
    tracing never changes an observable.

    ``transport`` picks how batch bytes reach the workers: ``"pipe"``
    (the struct codec over the result pipe — the default and the
    universal fallback), ``"shm"`` (per-worker shared-memory rings with
    descriptor-only pipe traffic — see :mod:`repro.parallel.shm`), or
    ``"auto"`` (shm for the process executor when the platform supports
    it). ``ring_bytes`` sizes each ring's data region; batches that
    cannot fit a ring fall back to pipe frames transparently. The
    transport is pure mechanism: observables are bit-identical across
    transports, which the differential grid asserts.
    """

    def __init__(
        self,
        config: JoinConfig,
        workers: int = 1,
        num_shards: Optional[int] = None,
        batch_size: Optional[int] = None,
        executor: str = "process",
        start_method: Optional[str] = None,
        spans: bool = False,
        spans_sample: int = 1,
        telemetry: bool = False,
        telemetry_out: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        trace: bool = False,
        trace_sample: int = DEFAULT_TRACE_SAMPLE,
        transport: str = "pipe",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if transport != "auto" and transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be 'auto' or one of {TRANSPORTS}, "
                f"got {transport!r}"
            )
        if ring_bytes < MIN_RING_BYTES:
            raise ValueError(
                f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes}"
            )
        if transport == "auto":
            # Only the process executor has real segments to gain from;
            # inline defaults to the pipe codec round-trip.
            transport = (
                "shm"
                if executor == "process" and shm_supported()[0]
                else "pipe"
            )
        elif transport == "shm" and executor == "process":
            ok, reason = shm_supported()
            if not ok:
                raise ValueError(
                    f"shm transport is unsupported on this platform "
                    f"({reason}); use transport='pipe'"
                )
        if batch_size is None:
            batch_size = config.batch_size
        elif batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if spans_sample < 1:
            raise ValueError(f"spans_sample must be >= 1, got {spans_sample}")
        if trace_sample < 1:
            raise ValueError(f"trace_sample must be >= 1, got {trace_sample}")
        if heartbeat_interval is not None and (
            not math.isfinite(heartbeat_interval) or heartbeat_interval <= 0
        ):
            raise ValueError(
                f"heartbeat_interval must be a positive finite number of "
                f"seconds, got {heartbeat_interval}"
            )
        self.config = config
        self.workers = workers
        self.num_shards = num_shards
        self.batch_size = batch_size
        self.executor = executor
        self.start_method = start_method
        self.spans = bool(spans)
        self.spans_sample = spans_sample
        self.telemetry = (
            bool(telemetry)
            or telemetry_out is not None
            or heartbeat_interval is not None
        )
        self.telemetry_out = telemetry_out
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else DEFAULT_HEARTBEAT_INTERVAL
        )
        self.trace = bool(trace)
        self.trace_sample = trace_sample
        self.transport = transport
        self.ring_bytes = ring_bytes
        #: Segment names of the most recent shm run (empty otherwise) —
        #: the leak tests assert these are unattachable afterwards.
        self.shm_segment_names: List[str] = []

    # -- execution -----------------------------------------------------------
    def run(self, stream) -> ParallelJoinResult:
        """Route ``stream`` (a RecordStream or record iterable) through
        the workers; block until merged."""
        started = time.monotonic()
        self._run_started = started
        self._driver_spans = (
            SpanRecorder(sample=self.spans_sample) if self.spans else None
        )
        #: worker id → decoded span columns, filled while draining.
        self._worker_span_cols: Dict[int, tuple] = {}
        self._driver_trace = (
            TraceRecorder(sample=self.trace_sample) if self.trace else None
        )
        #: worker id → decoded trace columns, filled while draining.
        self._worker_trace_cols: Dict[int, tuple] = {}
        records = list(stream)
        plan = plan_shards(
            self.config, _corpus_of(stream, records), self.num_shards
        )
        shards = plan.num_shards
        workers = max(1, min(self.workers, shards))
        assignment = [plan.shards_of_worker(w, workers) for w in range(workers)]

        self._telemetry = (
            TelemetryRecorder(
                workers=workers,
                shards=shards,
                executor=self.executor,
                interval=self.heartbeat_interval,
                base=started,
                out_path=self.telemetry_out,
                transport=self.transport,
            )
            if self.telemetry
            else None
        )

        if self.executor == "process":
            chunks, summaries = self._run_process(
                plan, records, workers, assignment
            )
        else:
            chunks, summaries = self._run_inline(
                plan, records, workers, assignment
            )

        return self._merge(plan, records, workers, chunks, summaries, started)

    def _feed(self, plan: ShardPlan, records, send) -> Dict[str, float]:
        """Route records into per-shard batches; ``send(shard, items,
        traced_rids)`` ships one full batch. Returns the driver's
        fanout stats.

        The tracing stride is hoisted out of the loop entirely: the
        untraced run takes a loop with no per-record stride arithmetic
        at all, and the traced run accumulates each batch's traced rids
        *here*, alongside the buffer appends, so the senders stamp
        encode/write events without rescanning every batch for traced
        records (the rid set is a pure function of the stride either
        way — the worker still re-derives it independently)."""
        shards = plan.num_shards
        batch_size = self.batch_size
        tracer = self._driver_trace
        stride = tracer.sample if tracer is not None else 0
        monotonic = time.monotonic
        buffers: List[List[Tuple[int, Record]]] = [[] for _ in range(shards)]
        fanout_total = 0.0
        fanout_peak = 0.0
        count = 0
        if not stride:
            for record in records:
                tasks = plan.tasks(record)
                fraction = len(tasks) / shards
                fanout_total += fraction
                if fraction > fanout_peak:
                    fanout_peak = fraction
                count += 1
                for shard, op in tasks:
                    buffer = buffers[shard]
                    buffer.append((op, record))
                    if len(buffer) >= batch_size:
                        send(shard, buffer, None)
                        buffer.clear()
            for shard, buffer in enumerate(buffers):
                if buffer:
                    send(shard, buffer, None)
                    buffer.clear()
            return {
                "total": fanout_total, "count": count, "peak": fanout_peak
            }
        traced_rids: List[List[int]] = [[] for _ in range(shards)]
        for record in records:
            # The feed event covers the record's routing and buffer
            # appends — including any batch flush it triggers, which is
            # latency the record genuinely experiences at the driver.
            traced = not record.rid % stride
            if traced:
                t_rec = monotonic()
            tasks = plan.tasks(record)
            fraction = len(tasks) / shards
            fanout_total += fraction
            if fraction > fanout_peak:
                fanout_peak = fraction
            count += 1
            for shard, op in tasks:
                buffer = buffers[shard]
                buffer.append((op, record))
                if traced:
                    traced_rids[shard].append(record.rid)
                if len(buffer) >= batch_size:
                    send(shard, buffer, traced_rids[shard])
                    buffer.clear()
                    traced_rids[shard] = []
            if traced:
                tracer.record(_EV_FEED, record.rid, t_rec, monotonic())
        for shard, buffer in enumerate(buffers):
            if buffer:
                send(shard, buffer, traced_rids[shard])
                buffer.clear()
                traced_rids[shard] = []
        return {"total": fanout_total, "count": count, "peak": fanout_peak}

    def _run_process(self, plan, records, workers, assignment):
        import multiprocessing as mp

        spans = self._driver_spans
        spans_sample = self.spans_sample if spans is not None else 0
        tracer = self._driver_trace
        trace_sample = self.trace_sample if tracer is not None else 0
        telemetry = self._telemetry
        interval = self.heartbeat_interval
        monotonic = time.monotonic
        ctx = mp.get_context(self.start_method)
        use_shm = self.transport == "shm"
        conns = []
        procs = []
        hb_conns = []
        #: Per-worker ``(batch ShmRing, mirror ShmRing)`` — created (and
        #: therefore unlinked) by the driver, before the workers that
        #: attach by name exist.
        channels: List[Tuple[ShmRing, ShmRing]] = []
        self.shm_segment_names = []
        if use_shm:
            # Backstop first, segments second: whatever gets created is
            # already covered if the process dies mid-setup. The happy
            # path unlinks in the ``finally`` below and unregisters.
            atexit.register(_unlink_rings, channels)
        try:
            if use_shm:
                for w in range(workers):
                    pair = (ShmRing(self.ring_bytes), ShmRing(self.ring_bytes))
                    channels.append(pair)
                    self.shm_segment_names.extend(seg.name for seg in pair)
            for w in range(workers):
                parent, child = ctx.Pipe(duplex=True)
                hb_send = None
                if telemetry is not None:
                    # Dedicated one-way heartbeat pipe: the monitoring
                    # plane never shares the result pipe, so the
                    # deadlock-freedom argument is untouched.
                    hb_recv, hb_send = ctx.Pipe(duplex=False)
                    hb_conns.append(hb_recv)
                proc = ctx.Process(
                    target=worker_main,
                    args=(
                        child, w, self.config, assignment[w],
                        plan.num_shards, spans_sample,
                        hb_send, interval if telemetry is not None else 0.0,
                        trace_sample,
                        self.transport,
                        channels[w][0].name if use_shm else None,
                        channels[w][1].name if use_shm else None,
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                if hb_send is not None:
                    hb_send.close()
                conns.append(parent)
                procs.append(proc)
            hb_active = list(hb_conns)
            if spans is not None:
                spans.record(_SETUP, self._run_started, monotonic())

            def pump() -> None:
                """Drain every buffered heartbeat frame (non-blocking).
                A closed write end (worker exited) retires its pipe."""
                for conn in list(hb_active):
                    while True:
                        try:
                            if not conn.poll(0):
                                break
                            msg = conn.recv_bytes()
                        except (EOFError, OSError):
                            hb_active.remove(conn)
                            break
                        if msg and msg[0] == TAG_HEARTBEAT:
                            telemetry.on_heartbeat(decode_heartbeat(msg))

            #: Per-shard batch sequence (the deterministic sampling key
            #: for the driver's encode/write spans — it mirrors the
            #: worker-side counter by construction: both sides see
            #: each shard's batches in the same order).
            batch_seq: Dict[int, int] = {}
            track = telemetry is not None
            stride = tracer.sample if tracer is not None else 0
            tstate = {
                "records": 0, "batches": 0, "bytes": 0,
                "encode_s": 0.0, "write_s": 0.0,
                "feed_t0": 0.0, "next": monotonic() + interval,
            }
            #: One tag+shard prefix and one scratch buffer for the whole
            #: feed: the pipe path allocates nothing per batch beyond
            #: the codec's own column slices.
            prefixes = [
                bytes([TAG_BATCH]) + _U32.pack(shard)
                for shard in range(plan.num_shards)
            ]
            encoder = BatchEncoder()
            #: Per-worker generation counters: frames the driver
            #: published (in) and mirror frames it consumed (out).
            generations = [0] * workers
            drain_generations = [0] * workers

            def driver_stats(feed_s: float) -> dict:
                stats = {
                    "records_routed": tstate["records"],
                    "batches_sent": tstate["batches"],
                    "bytes_out": tstate["bytes"],
                    "feed_s": feed_s,
                    "encode_s": tstate["encode_s"],
                    "pipe_write_s": 0.0 if use_shm else tstate["write_s"],
                }
                if use_shm:
                    stats["shm_write_s"] = tstate["write_s"]
                    stats["ring_occupancy"] = max(
                        pair[0].ring.occupancy() for pair in channels
                    )
                return stats

            def worker_died(w: int) -> ParallelWorkerError:
                """Surface a worker's death during the feed: prefer its
                own TAG_ERROR traceback if one is buffered."""
                conn = conns[w]
                try:
                    if conn.poll(0):
                        msg = conn.recv_bytes()
                        if msg and msg[0] == TAG_ERROR:
                            return ParallelWorkerError(pickle.loads(msg[1:]))
                except (EOFError, OSError):
                    pass
                return ParallelWorkerError(
                    f"worker {w} died mid-feed (pipe closed before EOF)"
                )

            def wait_claim(w: int, ring: RingBuffer, length: int):
                """Credit wait: sleep-poll the consumer's tail counter.
                The worker releases every frame right after decoding it
                and sends nothing before EOF, so the wait is bounded —
                unless the worker died, which the periodic liveness
                check turns into a pointed error instead of a hang."""
                claim = ring.try_claim(length)
                polls = 0
                while claim is None:
                    if track:
                        pump()
                    time.sleep(0.0002)
                    polls += 1
                    if polls % 64 == 0:
                        if conns[w].poll(0) or not procs[w].is_alive():
                            raise worker_died(w)
                    claim = ring.try_claim(length)
                return claim

            def send_pipe(shard: int, items, traced) -> None:
                if spans is None and not track and tracer is None:
                    conns[shard % workers].send_bytes(
                        encoder.encode(prefixes[shard], items)
                    )
                    return
                seq = batch_seq.get(shard, 0)
                batch_seq[shard] = seq + 1
                keep = spans is not None and spans.keep(seq)
                # Traced rids come pre-accumulated from the feed loop —
                # no per-batch rescan here.
                traced_rids = traced if traced else None
                if not keep and not track and not traced_rids:
                    conns[shard % workers].send_bytes(
                        encoder.encode(prefixes[shard], items)
                    )
                    return
                t0 = monotonic()
                frame = encoder.encode(prefixes[shard], items)
                t1 = monotonic()
                conns[shard % workers].send_bytes(frame)
                t2 = monotonic()
                if keep:
                    spans.record(_ENCODE, t0, t1, shard, seq)
                    spans.record(_PIPE_WRITE, t1, t2, shard, seq)
                if traced_rids:
                    # Every traced record in the batch inherits the
                    # batch's encode and pipe-write windows.
                    for rid in traced_rids:
                        tracer.record(_EV_ENCODE, rid, t0, t1, shard)
                        tracer.record(_EV_PIPE_WRITE, rid, t1, t2, shard)
                if track:
                    tstate["encode_s"] += t1 - t0
                    tstate["write_s"] += t2 - t1
                    tstate["batches"] += 1
                    tstate["records"] += len(items)
                    tstate["bytes"] += len(frame)
                    if t2 >= tstate["next"]:
                        tstate["next"] = t2 + interval
                        pump()
                        telemetry.driver_tick(
                            driver_stats(t2 - tstate["feed_t0"])
                        )

            def send_shm(shard: int, items, traced) -> None:
                w = shard % workers
                seq = batch_seq.get(shard, 0)
                batch_seq[shard] = seq + 1
                keep = spans is not None and spans.keep(seq)
                traced_rids = traced if traced else None
                timed = keep or track or bool(traced_rids)
                if timed:
                    t0 = monotonic()
                parts = record_batch_parts(items)
                total = sum(len(part) for part in parts)
                if timed:
                    t1 = monotonic()
                ring = channels[w][0].ring
                claim = ring.try_claim(total)
                if claim is None and not ring.claimable(total):
                    # A batch too large for the ring (or un-claimable at
                    # this wrap offset): per-frame pipe-codec fallback.
                    frame = bytearray(prefixes[shard])
                    for part in parts:
                        frame += part
                    sent = len(frame)
                    try:
                        conns[w].send_bytes(frame)
                    except OSError:
                        raise worker_died(w) from None
                else:
                    if claim is None:
                        claim = wait_claim(w, ring, total)
                    offset, advance = claim
                    ring.write(offset, parts)
                    ring.publish(advance)
                    descriptor = encode_shm_descriptor(
                        TAG_SHM_FRAME, shard, offset, total, advance,
                        generations[w],
                    )
                    generations[w] += 1
                    sent = len(descriptor) + total
                    try:
                        conns[w].send_bytes(descriptor)
                    except OSError:
                        raise worker_died(w) from None
                if timed:
                    t2 = monotonic()
                if keep:
                    spans.record(_ENCODE, t0, t1, shard, seq)
                    spans.record(_SHM_WRITE, t1, t2, shard, seq)
                if traced_rids:
                    # The trace event vocabulary is transport-neutral:
                    # pipe_write is "the transport publish window",
                    # here the ring copy + descriptor send.
                    for rid in traced_rids:
                        tracer.record(_EV_ENCODE, rid, t0, t1, shard)
                        tracer.record(_EV_PIPE_WRITE, rid, t1, t2, shard)
                if track:
                    tstate["encode_s"] += t1 - t0
                    tstate["write_s"] += t2 - t1
                    tstate["batches"] += 1
                    tstate["records"] += len(items)
                    tstate["bytes"] += sent
                    if t2 >= tstate["next"]:
                        tstate["next"] = t2 + interval
                        pump()
                        telemetry.driver_tick(
                            driver_stats(t2 - tstate["feed_t0"])
                        )

            send = send_shm if use_shm else send_pipe
            t_feed = monotonic()
            tstate["feed_t0"] = t_feed
            self._fanout = self._feed(plan, records, send)
            if spans is not None:
                spans.record(_FEED, t_feed, monotonic())
            if track:
                # Closing driver row: cumulative feed totals, so every
                # telemetry artefact carries at least one driver tick.
                t_now = monotonic()
                pump()
                telemetry.driver_tick(driver_stats(t_now - t_feed))

            t_drain = monotonic()
            for w, conn in enumerate(conns):
                try:
                    conn.send_bytes(bytes([TAG_EOF]))
                except OSError:
                    raise worker_died(w) from None

            chunks: List[List[MatchRow]] = []
            summaries = []
            for w, conn in enumerate(conns):
                rows: List[MatchRow] = []
                while True:
                    try:
                        if track:
                            # Keep ingesting live samples while blocked
                            # on a straggler's results.
                            while not conn.poll(0.05):
                                pump()
                        msg = conn.recv_bytes()
                    except EOFError:
                        raise ParallelWorkerError(
                            f"worker {w} exited without a summary "
                            f"(killed or crashed before reporting)"
                        ) from None
                    tag = msg[0]
                    if tag == TAG_MATCHES:
                        rows.extend(decode_match_batch(msg[1:]))
                    elif tag == TAG_SHM_MATCHES:
                        _, offset, length, advance, generation = (
                            decode_shm_descriptor(msg[1:])
                        )
                        if generation != drain_generations[w]:
                            raise ParallelWorkerError(
                                f"worker {w} mirror ring desynced: frame "
                                f"generation {generation}, expected "
                                f"{drain_generations[w]}"
                            )
                        drain_generations[w] += 1
                        ring = channels[w][1].ring
                        # decode copies the columns out; releasing right
                        # after returns the credit a blocked worker may
                        # be waiting on.
                        rows.extend(
                            decode_match_batch(ring.view(offset, length))
                        )
                        ring.release(advance)
                    elif tag == TAG_SPANS:
                        self._worker_span_cols[w] = decode_span_frame(msg[1:])
                    elif tag == TAG_TRACE:
                        self._worker_trace_cols[w] = decode_trace_frame(msg[1:])
                    elif tag == TAG_DONE:
                        summaries.append(pickle.loads(msg[1:]))
                        break
                    elif tag == TAG_ERROR:
                        raise ParallelWorkerError(pickle.loads(msg[1:]))
                    else:
                        raise ParallelWorkerError(
                            f"worker {w} sent unknown frame tag {tag}"
                        )
                chunks.append(rows)
            for proc in procs:
                proc.join()
            if track:
                # Workers closed their heartbeat ends on exit; drain
                # whatever is still buffered (the flagged final
                # samples) through to EOF.
                pump()
            if spans is not None:
                spans.record(_DRAIN, t_drain, monotonic())
            return chunks, summaries
        finally:
            for conn in conns:
                conn.close()
            for conn in hb_conns:
                conn.close()
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
            if use_shm:
                # Unlink after the workers are gone, on every exit path
                # — normal return, worker crash, KeyboardInterrupt —
                # then retire the atexit backstop (unlink is idempotent,
                # but a later run re-registers a fresh channel list).
                _unlink_rings(channels)
                atexit.unregister(_unlink_rings)

    def _run_inline(self, plan, records, workers, assignment):
        spans = self._driver_spans
        spans_sample = self.spans_sample if spans is not None else 0
        tracer = self._driver_trace
        trace_sample = self.trace_sample if tracer is not None else 0
        telemetry = self._telemetry
        interval = self.heartbeat_interval
        monotonic = time.monotonic
        born = monotonic()
        pool = [
            ShardWorker(
                self.config, assignment[w], plan.num_shards,
                spans_sample=spans_sample, worker=w,
                trace_sample=trace_sample,
            )
            for w in range(workers)
        ]
        if spans is not None:
            spans.record(_SETUP, self._run_started, monotonic())

        #: Inline heartbeat state: per-worker sample sequence and next
        #: due time. Samples round-trip through the wire codec so the
        #: inline differential grid covers the heartbeat frame format
        #: exactly like it covers the record/span codecs.
        hb_seq = [0] * workers
        hb_next = [born + interval] * workers

        def emit_heartbeat(worker: ShardWorker, final: bool = False) -> None:
            now = monotonic()
            frame = encode_heartbeat(
                worker.worker,
                hb_seq[worker.worker],
                now - born,
                now,
                worker.telemetry_snapshot(),
                dropped=0,
                final=final,
            )
            hb_seq[worker.worker] += 1
            hb_next[worker.worker] = now + interval
            telemetry.on_heartbeat(decode_heartbeat(frame))

        batch_seq: Dict[int, int] = {}
        use_shm = self.transport == "shm"
        #: Inline rings are plain ``bytearray``-backed — the identical
        #: claim/publish/release protocol with no real segments, which
        #: is what lets the differential grid cover ring wraparound
        #: deterministically on any platform, processes or not.
        rings = (
            [RingBuffer.local(self.ring_bytes) for _ in range(workers)]
            if use_shm
            else None
        )

        def materialize(worker: ShardWorker, items):
            """Produce the decode buffer for one batch: a pipe-codec
            bytes object, or a zero-copy ring view (published then
            immediately consumed — the inline executor is both ends of
            the ring, so wraparound happens and credits always clear).
            Returns ``(payload, advance, ring)``; a non-zero advance
            must be released after decode."""
            if not use_shm:
                return encode_record_batch(items), 0, None
            ring = rings[worker.worker]
            parts = record_batch_parts(items)
            total = sum(len(part) for part in parts)
            claim = ring.try_claim(total)
            if claim is None:
                # Un-claimable (frame ~ring-sized): pipe-codec fallback,
                # same as the process executor.
                return b"".join(parts), 0, None
            offset, advance = claim
            ring.write(offset, parts)
            ring.publish(advance)
            return ring.view(offset, total), advance, ring

        def send(shard: int, items, traced) -> None:
            # Round-trip through the codec so inline runs exercise the
            # exact wire path (and records arrive re-materialized, as
            # they would from a pipe or a ring). Traced rids arrive
            # pre-accumulated from the feed loop.
            worker = pool[shard % workers]
            traced_rids = traced if traced else None
            keep = False
            if spans is not None:
                seq = batch_seq.get(shard, 0)
                batch_seq[shard] = seq + 1
                keep = spans.keep(seq)
            if keep or traced_rids:
                t0 = monotonic()
                payload, advance, ring = materialize(worker, items)
                t1 = monotonic()
                if keep:
                    spans.record(_ENCODE, t0, t1, shard, seq)
                if traced_rids:
                    for rid in traced_rids:
                        tracer.record(_EV_ENCODE, rid, t0, t1, shard)
            else:
                payload, advance, ring = materialize(worker, items)
            worker.bytes_in += len(payload)
            span_decode = worker.will_sample(shard)
            if span_decode or traced_rids:
                wseq = worker._batch_seq.get(shard, 0)
                t0 = monotonic()
                decoded = decode_record_batch(payload)
                t1 = monotonic()
                if span_decode:
                    worker.spans.record(_DECODE, t0, t1, shard, wseq)
                if traced_rids:
                    # Stamped into the *worker's* recorder, mirroring
                    # worker_main (no pipe-write event inline — there
                    # is no pipe).
                    wtracer = worker.tracer
                    for rid in traced_rids:
                        wtracer.record(_EV_DECODE, rid, t0, t1, shard)
            else:
                decoded = decode_record_batch(payload)
            if advance:
                ring.release(advance)
            worker.process_batch(shard, decoded)
            if telemetry is not None and monotonic() >= hb_next[worker.worker]:
                emit_heartbeat(worker)

        t_feed = monotonic()
        self._fanout = self._feed(plan, records, send)
        if spans is not None:
            spans.record(_FEED, t_feed, monotonic())
        for worker in pool:
            worker.lifetime_s = monotonic() - born
        if telemetry is not None:
            # The flagged final sample per worker, mirroring the
            # process executor's EOF heartbeat.
            for worker in pool:
                emit_heartbeat(worker, final=True)
        summaries = [worker.finish() for worker in pool]
        if telemetry is not None:
            for w, summary in enumerate(summaries):
                summary["heartbeats"] = hb_seq[w]
                summary["heartbeats_dropped"] = 0
        if spans is not None:
            # Round-trip worker spans through the wire frame too, for
            # the same inline-covers-the-codec reason as above.
            for w, worker in enumerate(pool):
                self._worker_span_cols[w] = decode_span_frame(
                    encode_span_frame(*worker.spans.columns())
                )
        if tracer is not None:
            # Same round-trip for the trace columns: the inline
            # differential grid covers the TAG_TRACE frame format.
            for w, worker in enumerate(pool):
                self._worker_trace_cols[w] = decode_trace_frame(
                    encode_trace_frame(*worker.tracer.columns())
                )
        return [worker.matches for worker in pool], summaries

    def _merge(
        self, plan, records, workers, chunks, summaries, started
    ) -> ParallelJoinResult:
        spans = getattr(self, "_driver_spans", None)
        t_merge = time.monotonic()
        shard_meters: Dict[int, dict] = {}
        worker_stats = []
        for w, summary in enumerate(summaries):
            shard_meters.update(summary["meters"])
            worker_stats.append(
                {
                    "worker": w,
                    "shards": plan.shards_of_worker(w, workers),
                    "records": summary["records"],
                    "batches": summary["batches"],
                    "busy_s": summary["busy_s"],
                    "intervals": summary["intervals"],
                    "blocked_s": summary.get("blocked_s", 0.0),
                    "bytes_in": summary.get("bytes_in", 0),
                    "bytes_out": summary.get("bytes_out", 0),
                    "lifetime_s": summary.get("lifetime_s", 0.0),
                    "peak_rss_bytes": summary.get("peak_rss_bytes", 0),
                    "span_count": summary.get("span_count", 0),
                    "heartbeats": summary.get("heartbeats", 0),
                    "heartbeats_dropped": summary.get("heartbeats_dropped", 0),
                }
            )
        operations, events, signals = merge_meters(shard_meters)
        matches = merge_matches(chunks)
        fanout = getattr(self, "_fanout", {"total": 0.0, "count": 0, "peak": 0.0})
        if fanout["count"]:
            peak = fanout["peak"]
            if (
                "routing_fanout_fraction" not in signals
                or peak > signals["routing_fanout_fraction"]
            ):
                signals["routing_fanout_fraction"] = peak
        if spans is not None:
            spans.record(_MERGE, t_merge, time.monotonic())
        wall_s = time.monotonic() - started

        telemetry_doc = None
        recorder = getattr(self, "_telemetry", None)
        if recorder is not None:
            recorder.finalize(wall_s, len(records), len(matches))
            telemetry_doc = recorder.document()

        span_header = span_rows = None
        if spans is not None:
            span_rows = spans.rows(base=started, worker=DRIVER)
            overhead_workers: Dict[str, dict] = {}
            for w, summary in enumerate(summaries):
                cols = self._worker_span_cols.get(w)
                if cols is not None:
                    span_rows.extend(spans_to_rows(*cols, base=started, worker=w))
                count = summary.get("span_count", 0)
                cost = summary.get("span_record_cost_s", 0.0)
                overhead_workers[str(w)] = {
                    "count": count,
                    "record_cost_s": round(cost, 12),
                    "estimated_s": round(count * cost, 9),
                }
            span_rows.sort(key=lambda r: (r["start"], r["end"], r["worker"]))
            span_header = {
                "kind": "header",
                "schema": SPANS_SCHEMA_VERSION,
                "wall_s": round(wall_s, 9),
                "executor": self.executor,
                "transport": self.transport,
                "workers": workers,
                "shards": plan.num_shards,
                "batch_size": self.batch_size,
                "batches": sum(s["batches"] for s in summaries),
                "sample": self.spans_sample,
                "overhead": {
                    "driver": {
                        "count": len(spans),
                        "record_cost_s": round(spans.record_cost_s, 12),
                        "estimated_s": round(spans.estimated_overhead_s(), 9),
                    },
                    "workers": overhead_workers,
                },
            }

        trace_header = trace_rows = None
        tracer = getattr(self, "_driver_trace", None)
        if tracer is not None:
            # Driver and worker stamps share one comparable monotonic
            # clock (workers are forked/spawned from this process on
            # the same host), so rebasing every column to run start is
            # the whole clock alignment story — see DESIGN §13.
            trace_rows = tracer.rows(base=started, worker=DRIVER)
            for w in range(workers):
                cols = self._worker_trace_cols.get(w)
                if cols is not None:
                    trace_rows.extend(
                        trace_to_rows(*cols, base=started, worker=w)
                    )
            trace_rows.sort(
                key=lambda r: (r["rid"], r["start"], r["end"], r["worker"])
            )
            traced = {row["rid"] for row in trace_rows}
            trace_header = {
                "kind": "header",
                "artefact": RECTRACE_ARTEFACT,
                "schema": RECTRACE_SCHEMA_VERSION,
                "wall_s": round(wall_s, 9),
                "executor": self.executor,
                "transport": self.transport,
                "workers": workers,
                "shards": plan.num_shards,
                "batch_size": self.batch_size,
                "records": len(records),
                "sample": self.trace_sample,
                "traced": len(traced),
                "events": len(trace_rows),
                "stages": latency_digest(trace_rows),
            }
        return ParallelJoinResult(
            config=self.config,
            num_shards=plan.num_shards,
            workers=workers,
            batch_size=self.batch_size,
            executor=self.executor,
            records=len(records),
            matches=matches,
            operations=operations,
            events=events,
            signals=signals,
            shard_meters=shard_meters,
            worker_stats=worker_stats,
            routing_fanout=fanout,
            transport=self.transport,
            started=started,
            wall_s=wall_s,
            span_header=span_header,
            span_rows=span_rows,
            telemetry=telemetry_doc,
            trace_header=trace_header,
            trace_rows=trace_rows,
        )


def run_serial(
    config: JoinConfig, stream, num_shards: Optional[int] = None
) -> ParallelJoinResult:
    """Ground-truth serial execution of the identical sharded workload.

    Same shard plan, same engines, same per-record schedule — but no
    batching, no codec, no processes: every probe/insert hits its
    engine directly and meters per record. The parallel runtime must
    reproduce this result bit-for-bit on every observable; the
    differential tests diff against this function.
    """
    started = time.monotonic()
    records = list(stream)
    plan = plan_shards(config, _corpus_of(stream, records), num_shards)
    shards = plan.num_shards
    meters = {shard: WorkMeter() for shard in range(shards)}
    engines = {
        shard: build_shard_engine(config, plan.func, shard, shards, meters[shard])
        for shard in range(shards)
    }
    matches: List[MatchRow] = []
    fanout_total = 0.0
    fanout_peak = 0.0
    for record in records:
        tasks = plan.tasks(record)
        fraction = len(tasks) / shards
        fanout_total += fraction
        if fraction > fanout_peak:
            fanout_peak = fraction
        for shard, op in tasks:
            engine = engines[shard]
            if op & PROBE:
                found = engine.probe(record)
                meters[shard].event("results", len(found))
                ts, rid = record.timestamp, record.rid
                for m in found:
                    matches.append((ts, rid, m.partner.rid, m.overlap, m.similarity))
            if op & INDEX:
                engine.insert(record)
    for shard in range(shards):
        meters[shard].event("final_postings", engines[shard].live_postings)
    matches.sort()

    shard_meters = {
        shard: {
            "operations": dict(meter.operations),
            "events": dict(meter.events),
            "signals": dict(meter.signals),
        }
        for shard, meter in meters.items()
    }
    operations, events, signals = merge_meters(shard_meters)
    fanout = {"total": fanout_total, "count": len(records), "peak": fanout_peak}
    if fanout["count"] and (
        "routing_fanout_fraction" not in signals
        or fanout_peak > signals["routing_fanout_fraction"]
    ):
        signals["routing_fanout_fraction"] = fanout_peak
    wall_s = time.monotonic() - started
    return ParallelJoinResult(
        config=config,
        num_shards=shards,
        workers=1,
        batch_size=0,
        executor="serial",
        records=len(records),
        matches=matches,
        operations=operations,
        events=events,
        signals=signals,
        shard_meters=shard_meters,
        worker_stats=[
            {
                "worker": 0,
                "shards": list(range(shards)),
                "records": len(records),
                "batches": 0,
                "busy_s": wall_s,
                "intervals": [(started, started + wall_s)],
                "blocked_s": 0.0,
                "bytes_in": 0,
                "bytes_out": 0,
                "lifetime_s": wall_s,
                "peak_rss_bytes": peak_rss_bytes(),
                "span_count": 0,
            }
        ],
        routing_fanout=fanout,
        started=started,
        wall_s=wall_s,
    )
