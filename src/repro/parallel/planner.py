"""Shard planning: how records map to engine shards and shards to workers.

The key determinism decision of the runtime: **logical shards are
decoupled from physical workers**. The stream is routed over a fixed
number of shards (``config.num_workers``, the same sharding the
simulated cluster uses), each backed by its own
:class:`~repro.core.local_join.StreamingSetJoin`; the ``--workers N``
process count only decides which OS process *hosts* each shard
(``shard % N``). Every shard therefore sees exactly the same record
subsequence — in arrival order, because routing happens in the driver
and per-shard delivery is FIFO — regardless of how many processes run.
Match sets, ``WorkMeter`` totals and fingerprints are a pure function
of the shard plan, which is why the differential harness can demand
bit-equality across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import JoinConfig
from repro.partition.length_partition import LengthPartition
from repro.records import Record
from repro.routing.base import Router, RoutingDecision
from repro.routing.plan import plan_routing
from repro.similarity.functions import SimilarityFunction, get_similarity


@dataclass
class ShardPlan:
    """The routing side of one parallel run, fixed before any IPC."""

    config: JoinConfig
    router: Router
    partition: Optional[LengthPartition]
    func: SimilarityFunction = field(repr=False)

    @property
    def num_shards(self) -> int:
        """Actual shard count — the router's, which can be below the
        requested count when a length partition cannot split further."""
        return self.router.num_workers

    def route(self, record: Record) -> RoutingDecision:
        return self.router.route(record)

    def tasks(self, record: Record) -> List[Tuple[int, int]]:
        """``(shard, op)`` pairs for one record, in the dispatcher's
        order (ascending shard; op combines probe/index bits exactly
        like the ``"p"/"i"/"b"`` message kinds)."""
        from repro.parallel.codec import INDEX, PROBE

        decision = self.router.route(record)
        index_set = set(decision.index_tasks)
        probe_set = set(decision.probe_tasks)
        out = []
        for shard in sorted(index_set | probe_set):
            op = 0
            if shard in probe_set:
                op |= PROBE
            if shard in index_set:
                op |= INDEX
            out.append((shard, op))
        return out

    def shards_of_worker(self, worker: int, workers: int) -> List[int]:
        """The shards hosted by physical worker ``worker`` of ``workers``."""
        return [s for s in range(self.num_shards) if s % workers == worker]


def plan_shards(
    config: JoinConfig,
    corpus: Sequence[Tuple[int, ...]],
    num_shards: Optional[int] = None,
) -> ShardPlan:
    """Plan the shard routing for ``config`` over a corpus sample.

    ``corpus`` is the stream's token tuples (only the first
    ``config.sample_size`` are consulted, mirroring
    :meth:`DistributedStreamJoin.plan`). ``num_shards`` overrides the
    config's shard count for experiments; leaving it at the default
    keeps parallel observables comparable with the simulated cluster.
    """
    if config.use_bundles:
        raise ValueError(
            "the parallel runtime does not support bundles: the bundle "
            "engine reuses home-worker probe results, which the "
            "process-sharded driver does not observe"
        )
    shards = config.num_workers if num_shards is None else num_shards
    if shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {shards}")
    func = get_similarity(config.similarity, config.threshold)
    router, partition = plan_routing(
        config, func, corpus[: config.sample_size], num_workers=shards
    )
    return ShardPlan(config=config, router=router, partition=partition, func=func)
