"""Fundamental value types shared by every layer of the library.

This module sits at the bottom of the dependency graph — it imports
nothing from :mod:`repro` — so streams, routing, the simulator and the
core join can all share :class:`Record` without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Record:
    """One streaming record: a canonical token set plus arrival metadata.

    Attributes
    ----------
    rid:
        Unique, monotonically increasing record id (assigned by the
        source in arrival order; ties in ``timestamp`` are broken by
        ``rid``).
    tokens:
        Canonical token array — integer token ids sorted ascending in
        the global order (see
        :class:`repro.similarity.ordering.TokenDictionary`). Set
        semantics: no duplicates.
    timestamp:
        Arrival time in seconds (simulated event time).
    source:
        Stream-of-origin tag for multi-stream joins (``""`` for the
        self-join; ``"L"``/``"R"`` in :mod:`repro.core.two_stream`).
    """

    rid: int
    tokens: Tuple[int, ...] = field(default=())
    timestamp: float = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        if any(self.tokens[i] >= self.tokens[i + 1] for i in range(len(self.tokens) - 1)):
            raise ValueError(
                f"Record {self.rid}: tokens must be strictly ascending "
                f"(canonical form), got {self.tokens!r}"
            )

    @property
    def size(self) -> int:
        """Number of tokens (the record's *length* in the paper's sense)."""
        return len(self.tokens)

    def prefix(self, length: int) -> Tuple[int, ...]:
        """The first ``length`` tokens in the global order."""
        return self.tokens[:length]


def pair_key(a: Record, b: Record) -> Tuple[int, int]:
    """Order-independent identity of a result pair, keyed by record ids."""
    return (a.rid, b.rid) if a.rid < b.rid else (b.rid, a.rid)
