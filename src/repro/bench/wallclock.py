"""Wall-clock microbenchmarks: columnar fast path vs. reference engine.

Everything else in the repository measures *metered* work — cost-model
units over the Storm simulator, deliberately independent of host speed.
This module is the one place that measures real time: it drives the
columnar :class:`~repro.core.local_join.StreamingSetJoin` and the
retained pre-columnar
:class:`~repro.core.reference.ReferenceStreamingSetJoin` over identical
bench-calibrated streams and times the two hot phases separately
(methodology in DESIGN §9):

* **insert phase** — index every record (builds the full posting index);
* **probe phase** — probe every record against the fixed, fully-built
  index (no interleaved mutation, so the number is a clean per-probe
  cost).

Phases are timed best-of-``repeats`` on fresh engines (best, not mean:
the minimum is the least noise-contaminated estimate of the true cost
on a time-shared machine). Every run also cross-checks correctness —
identical match multisets, identical :class:`WorkMeter` operation and
event totals, identical ``live_postings`` — so a wall-clock win can
never hide a semantic drift. A small ``verify_pair`` microbenchmark
rides along to put the shared verification primitive's cost on record.

The suite writes ``BENCH_wallclock.json`` (see :func:`wallclock_suite`
for the schema) via ``python -m repro bench --wallclock``. The headline
is the probe-phase speedup on the AOL bench configuration; CI treats a
correctness mismatch as failure but never the timings themselves
(shared runners are too noisy to gate on).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import JoinConfig
from repro.core.local_join import StreamingSetJoin
from repro.core.metering import WorkMeter
from repro.core.reference import ReferenceStreamingSetJoin
from repro.datasets.corpora import synthetic_aol, synthetic_tweet
from repro.parallel.runtime import ParallelJoinRunner, run_serial
from repro.parallel.worker import peak_rss_bytes
from repro.records import Record
from repro.similarity.functions import get_similarity
from repro.similarity.verification import verify_pair
from repro.sketch.analysis import expected_recall, recall_lower_bound
from repro.sketch.engine import SketchStreamingSetJoin
from repro.sketch.minhash import MinHashScheme

#: The paper-start-date seed used by every calibrated bench workload.
SEED = 20200420

#: Probe-phase speedup the columnar engine must deliver on the AOL
#: bench configuration (the suite's headline acceptance target).
PROBE_SPEEDUP_TARGET = 3.0

#: Worker counts of the multi-core scaling sweep (capped at the CLI's
#: ``--workers``; 1 is always measured — it is the speedup baseline).
SCALING_WORKER_COUNTS = (1, 2, 4, 8)

#: Combined (insert+probe) wall-clock speedup the parallel runtime
#: targets at 4 workers over 1 worker, on hosts with >= 4 cores.
PARALLEL_SPEEDUP_TARGET = 1.6

#: Maximum acceptable wall-clock overhead of heartbeat telemetry at the
#: default sampling interval (fraction over the telemetry-off wall).
TELEMETRY_OVERHEAD_TARGET = 0.05

#: Maximum acceptable wall-clock overhead of record tracing at the
#: default sampling stride (fraction over the tracing-off wall).
TRACE_OVERHEAD_TARGET = 0.05

#: Maximum acceptable cost of archiving a finished run into the
#: persistent flight recorder, as a fraction of the run's own wall
#: time (the archive write happens after the join completes, so the
#: fraction is purely additive latency).
ARCHIVE_OVERHEAD_TARGET = 0.05

#: The headline corpus (density-calibrated like ``benchmarks.common``:
#: the paper's postings-per-token density at laptop-scale record
#: counts).
HEADLINE_CORPUS = "AOL"

#: (perms, bands) grid the sketch frontier sweeps. Rows per band =
#: perms // bands; fewer rows per band means more collisions (higher
#: recall, more verification work), more permutations mean slower
#: sketching but a finer similarity estimate.
SKETCH_FRONTIER_GRID: Tuple[Tuple[int, int], ...] = (
    (16, 4), (32, 4), (64, 4), (64, 8), (128, 4),
)

#: Minimum measured recall a grid config must reach to qualify for the
#: sketch headline.
SKETCH_RECALL_TARGET = 0.95

#: Probe-phase speedup over the exact columnar engine the qualifying
#: sketch config must deliver (the frontier's acceptance gate).
SKETCH_SPEEDUP_TARGET = 2.0


def _aol_stream(n: int, seed: int):
    return synthetic_aol(n, seed=seed, vocabulary_size=800, duplicate_rate=0.15)


def _tweet_stream(n: int, seed: int):
    return synthetic_tweet(n, seed=seed, vocabulary_size=1_200, duplicate_rate=0.25)


#: corpus name → (records, generator, generator description). Sizes are
#: chosen so the whole suite stays under ~30 s on a laptop while the
#: reference probe phase is long enough (hundreds of ms) to time
#: reliably.
WALLCLOCK_CORPORA: Dict[str, Tuple[int, Callable, Dict[str, object]]] = {
    "AOL": (
        15_000,
        _aol_stream,
        {"vocabulary_size": 800, "duplicate_rate": 0.15},
    ),
    "TWEET": (
        10_000,
        _tweet_stream,
        {"vocabulary_size": 1_200, "duplicate_rate": 0.25},
    ),
}


def _match_key(probe_rid: int, match) -> Tuple[int, int, float, int]:
    return (probe_rid, match.partner.rid, round(match.similarity, 12), match.overlap)


def _run_engine(
    engine_cls,
    records: List[Record],
    similarity: str,
    threshold: float,
    repeats: int,
    expiry: str = "lazy",
) -> Dict[str, object]:
    """Time insert/probe phases best-of-``repeats`` on fresh engines.

    The timed probe loop only takes ``len()`` of each result list so the
    measurement is the engine's cost, not the harness's: per-match
    bookkeeping is a constant absolute cost on both engines and would
    otherwise compress the reported ratio. The correctness artefacts
    (match keys, meter totals, live postings) come from one extra
    untimed pass on a fresh engine.
    """
    best_insert = best_probe = float("inf")
    results = 0
    for _ in range(repeats):
        func = get_similarity(similarity, threshold)
        engine = engine_cls(func, meter=WorkMeter(), expiry=expiry)
        probe = engine.probe
        t0 = time.perf_counter()
        for record in records:
            engine.insert(record)
        t1 = time.perf_counter()
        results = 0
        t2 = time.perf_counter()
        for record in records:
            results += len(probe(record))
        t3 = time.perf_counter()
        best_insert = min(best_insert, t1 - t0)
        best_probe = min(best_probe, t3 - t2)

    func = get_similarity(similarity, threshold)
    meter = WorkMeter()
    engine = engine_cls(func, meter=meter, expiry=expiry)
    for record in records:
        engine.insert(record)
    matches: List[Tuple[int, int, float, int]] = []
    for record in records:
        for match in engine.probe(record):
            matches.append(_match_key(record.rid, match))
    matches.sort()
    assert results == len(matches), (
        f"timed pass saw {results} results, correctness pass {len(matches)}"
    )
    return {
        "insert_s": best_insert,
        "probe_s": best_probe,
        "matches": matches,
        "operations": dict(meter.operations),
        "events": dict(meter.events),
        "live_postings": engine.live_postings,
    }


def _verify_micro(records: List[Record], threshold: float, repeats: int) -> Dict:
    """Microbenchmark of the shared ``verify_pair`` primitive.

    Times from-scratch merges over a deterministic sample of
    length-compatible record pairs — the irreducible verification cost
    both engines pay per admitted candidate.
    """
    func = get_similarity("jaccard", threshold)
    pairs = []
    nonempty = [r for r in records if r.size]
    for i in range(0, min(len(nonempty) - 1, 4_000), 2):
        r, s = nonempty[i], nonempty[i + 1]
        lo, hi = func.length_bounds(r.size)
        if lo <= s.size <= hi:
            pairs.append((r.tokens, s.tokens, func.min_overlap(r.size, s.size)))
    if not pairs:
        return {"pairs": 0}
    best = float("inf")
    comparisons = 0
    for _ in range(repeats):
        comparisons = 0
        t0 = time.perf_counter()
        for r_tokens, s_tokens, required in pairs:
            comparisons += verify_pair(r_tokens, s_tokens, required)[1]
        best = min(best, time.perf_counter() - t0)
    return {
        "pairs": len(pairs),
        "token_comparisons": comparisons,
        "best_s": best,
        "verifications_per_s": round(len(pairs) / best) if best > 0 else None,
    }


def _run_sketch_engine(
    records: List[Record],
    similarity: str,
    threshold: float,
    repeats: int,
    perms: int,
    bands: int,
) -> Dict[str, object]:
    """:func:`_run_engine`'s twin for the sketch tier.

    A fresh :class:`MinHashScheme` per repeat keeps the timing honest:
    the insert phase pays the cold signature computation (the memo
    helps only within a run, exactly as in streaming use)."""
    best_insert = best_probe = float("inf")
    results = 0
    for _ in range(repeats):
        func = get_similarity(similarity, threshold)
        engine = SketchStreamingSetJoin(
            func, scheme=MinHashScheme(perms=perms, bands=bands),
            meter=WorkMeter(),
        )
        probe = engine.probe
        t0 = time.perf_counter()
        for record in records:
            engine.insert(record)
        t1 = time.perf_counter()
        results = 0
        t2 = time.perf_counter()
        for record in records:
            results += len(probe(record))
        t3 = time.perf_counter()
        best_insert = min(best_insert, t1 - t0)
        best_probe = min(best_probe, t3 - t2)

    func = get_similarity(similarity, threshold)
    engine = SketchStreamingSetJoin(
        func, scheme=MinHashScheme(perms=perms, bands=bands),
        meter=WorkMeter(),
    )
    for record in records:
        engine.insert(record)
    matches: List[Tuple[int, int, float, int]] = []
    for record in records:
        for match in engine.probe(record):
            matches.append(_match_key(record.rid, match))
    matches.sort()
    assert results == len(matches), (
        f"timed pass saw {results} results, correctness pass {len(matches)}"
    )
    return {
        "insert_s": best_insert,
        "probe_s": best_probe,
        "matches": matches,
        "live_postings": engine.live_postings,
    }


def _frontier_pairs(matches) -> Dict[Tuple[int, int], float]:
    """Distinct non-self unordered pairs (with similarity) of an
    insert-all-then-probe-all match list."""
    pairs: Dict[Tuple[int, int], float] = {}
    for probe_rid, partner_rid, similarity, _overlap in matches:
        if probe_rid == partner_rid:
            continue
        key = (
            (probe_rid, partner_rid)
            if probe_rid < partner_rid
            else (partner_rid, probe_rid)
        )
        pairs[key] = similarity
    return pairs


def _frontier_run(corpus: str, n: int, seed: int, similarity: str,
                  threshold: float, repeats: int,
                  perms: Optional[int], bands: Optional[int]) -> Dict[str, object]:
    """One frontier mode: regenerate the corpus, run the engine, reduce
    the match list to the JSON-safe summary both transports share."""
    _, generator, _ = WALLCLOCK_CORPORA[corpus]
    records = list(generator(n, seed))
    if perms is None:
        out = _run_engine(
            StreamingSetJoin, records, similarity, threshold, repeats
        )
    else:
        out = _run_sketch_engine(
            records, similarity, threshold, repeats, perms, bands
        )
    return {
        "insert_s": out["insert_s"],
        "probe_s": out["probe_s"],
        "results": len(out["matches"]),
        "pairs": sorted(_frontier_pairs(out["matches"]).items()),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def _frontier_child_main() -> None:
    """Child-process entry for a frontier mode (``python -c`` target).

    Reads one JSON parameter object from stdin and writes the result
    JSON to stdout. Running each mode in a fresh interpreter is what
    makes ``peak_rss_bytes`` meaningful per mode: ``ru_maxrss`` is a
    process-lifetime high-water mark, so measuring the exact index and
    the sketch tiers in one process would report the exact index's
    peak for everyone. (A plain subprocess rather than a spawn-context
    worker so the parent's ``__main__`` module is never re-imported —
    the section then works identically from the CLI, pytest or a
    script.)"""
    params = json.loads(sys.stdin.read())
    out = _frontier_run(
        params["corpus"], params["n"], params["seed"], params["similarity"],
        params["threshold"], params["repeats"], params["perms"],
        params["bands"],
    )
    sys.stdout.write(json.dumps(out))


def _frontier_mode(corpus: str, n: int, seed: int, similarity: str,
                   threshold: float, repeats: int,
                   perms: Optional[int] = None,
                   bands: Optional[int] = None) -> Dict[str, object]:
    """Run one frontier mode, preferring process isolation for RSS.

    Falls back to in-process measurement (flagged ``isolated: False``
    — its peak RSS then reflects the whole suite, not the mode) if
    subprocesses are unavailable or the child fails."""
    params = json.dumps({
        "corpus": corpus, "n": n, "seed": seed, "similarity": similarity,
        "threshold": threshold, "repeats": repeats,
        "perms": perms, "bands": bands,
    })
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    try:
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.bench.wallclock import _frontier_child_main; "
             "_frontier_child_main()"],
            input=params.encode(), capture_output=True, env=env,
        )
        if proc.returncode != 0:
            raise OSError(
                f"frontier child exited {proc.returncode}: "
                f"{proc.stderr.decode(errors='replace')[-500:]}"
            )
        out = json.loads(proc.stdout.decode())
        out["isolated"] = True
        return out
    except (OSError, ValueError, subprocess.SubprocessError):
        out = _frontier_run(
            corpus, n, seed, similarity, threshold, repeats, perms, bands
        )
        out["isolated"] = False
        return out


def sketch_frontier_section(
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    grid: Tuple[Tuple[int, int], ...] = SKETCH_FRONTIER_GRID,
) -> Dict[str, object]:
    """The speed-vs-recall frontier (``sketch.frontier`` in the payload).

    Sweeps the (perms, bands) grid over the headline corpus, measuring
    each config's insert/probe wall time (best-of-``repeats``, same
    methodology as the exact engines) against the exact columnar
    engine, plus:

    * **measured recall/precision** — the config's distinct non-self
      pair set against the exact engine's (precision must be exactly
      1.0: candidates pass the same ``verify_pair``);
    * **analytic expectation** — :func:`expected_recall` and the
      4-sigma :func:`recall_lower_bound` over the exact pairs'
      similarities, so the measurement is checked against the banding
      model ``1-(1-s^rows)^bands``;
    * **peak RSS per mode** — each mode runs in its own spawned
      process (sketch state is tiny; the number shows it);
    * **determinism** — the headline config's streaming observables
      (operation/event totals, match rows) are bit-identical between
      :func:`run_serial` and the inline runner at 1 and 2 workers.

    The headline is the fastest grid config whose measured recall
    reaches :data:`SKETCH_RECALL_TARGET`; the gate is
    :data:`SKETCH_SPEEDUP_TARGET` x probe speedup at that recall.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    base_n, generator, gen_config = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))

    exact = _frontier_mode(corpus, n, seed, similarity, threshold, repeats)
    exact_pairs = {tuple(key): sim for key, sim in exact["pairs"]}
    exact_keys = frozenset(exact_pairs)
    similarities = list(exact_pairs.values())

    section: Dict[str, object] = {
        "corpus": corpus,
        "records": n,
        "generator": dict(gen_config),
        "threshold": threshold,
        "repeats": repeats,
        "recall_target": SKETCH_RECALL_TARGET,
        "speedup_target": SKETCH_SPEEDUP_TARGET,
        "exact": {
            "insert_s": round(exact["insert_s"], 6),
            "probe_s": round(exact["probe_s"], 6),
            "results": exact["results"],
            "pairs": len(exact_keys),
            "peak_rss_bytes": exact["peak_rss_bytes"],
            "isolated": exact["isolated"],
        },
        "grid": {},
    }

    precision_one = True
    recall_above_bound = True
    for perms, bands in grid:
        run = _frontier_mode(
            corpus, n, seed, similarity, threshold, repeats, perms, bands
        )
        keys = frozenset(tuple(key) for key, _sim in run["pairs"])
        true_positives = len(keys & exact_keys)
        recall = true_positives / len(exact_keys) if exact_keys else 1.0
        precision = true_positives / len(keys) if keys else 1.0
        rows = perms // bands
        bound = recall_lower_bound(similarities, rows, bands)
        precision_one = precision_one and precision == 1.0
        recall_above_bound = recall_above_bound and recall >= bound
        section["grid"][f"{perms}x{bands}"] = {
            "perms": perms,
            "bands": bands,
            "rows": rows,
            "insert_s": round(run["insert_s"], 6),
            "probe_s": round(run["probe_s"], 6),
            "probe_speedup": round(exact["probe_s"] / run["probe_s"], 3),
            "insert_speedup": round(exact["insert_s"] / run["insert_s"], 3),
            "results": run["results"],
            "pairs": len(keys),
            "recall": round(recall, 6),
            "precision": round(precision, 6),
            "expected_recall": round(
                expected_recall(similarities, rows, bands), 6
            ),
            "recall_lower_bound": round(bound, 6),
            "peak_rss_bytes": run["peak_rss_bytes"],
            "rss_vs_exact": round(
                run["peak_rss_bytes"] / exact["peak_rss_bytes"], 3
            ) if exact["peak_rss_bytes"] else None,
            "isolated": run["isolated"],
        }

    qualifying = [
        (name, entry) for name, entry in section["grid"].items()
        if entry["recall"] >= SKETCH_RECALL_TARGET
    ]
    if qualifying:
        name, entry = max(qualifying, key=lambda item: item[1]["probe_speedup"])
    else:  # nothing reached the recall floor: report the closest miss
        name, entry = max(
            section["grid"].items(), key=lambda item: item[1]["recall"]
        )
    section["headline"] = {
        "config": name,
        "probe_speedup": entry["probe_speedup"],
        "recall": entry["recall"],
        "precision": entry["precision"],
        "recall_target": SKETCH_RECALL_TARGET,
        "speedup_target": SKETCH_SPEEDUP_TARGET,
        "meets_target": (
            entry["recall"] >= SKETCH_RECALL_TARGET
            and entry["probe_speedup"] >= SKETCH_SPEEDUP_TARGET
            and entry["precision"] == 1.0
        ),
    }

    # Streaming determinism: the headline config's observables must not
    # depend on how the work is executed (serial vs inline-sharded).
    perms, bands = entry["perms"], entry["bands"]
    config = JoinConfig(
        mode="approx", perms=perms, bands=bands,
        similarity=similarity, threshold=threshold,
    )
    stream = generator(n, seed)
    serial = run_serial(config, stream)
    observables_identical = True
    matches_identical = True
    for workers in (1, 2):
        result = ParallelJoinRunner(
            config, workers=workers, executor="inline"
        ).run(stream)
        observables_identical = observables_identical and (
            result.operations == serial.operations
            and result.events == serial.events
        )
        matches_identical = matches_identical and (
            sorted(result.matches) == sorted(serial.matches)
        )
    section["determinism"] = {
        "config": name,
        "workers": [1, 2],
        "observables_identical": observables_identical,
        "matches_identical": matches_identical,
    }
    section["correctness"] = {
        "precision_one": precision_one,
        "recall_above_bound": recall_above_bound,
        "observables_identical": observables_identical,
        "matches_identical": matches_identical,
    }
    return section


def parallel_scaling_section(
    max_workers: int = 8,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """The multi-core scaling sweep (``parallel.scaling`` in the payload).

    One calibrated streaming workload (probe-and-insert over the
    headline corpus, length-routed over the default shard count) is run
    through :class:`~repro.parallel.runtime.ParallelJoinRunner` at each
    worker count of :data:`SCALING_WORKER_COUNTS` up to ``max_workers``,
    best-of-``repeats`` wall time per count. Every run's observables
    (match rows, operation and event totals) are diffed against
    :func:`~repro.parallel.runtime.run_serial` ground truth — the
    correctness booleans CI gates on. Timings are reported, never
    gated: ``host_cpus`` is recorded so a single-core runner's flat
    curve reads as what it is, and the 4-worker speedup target is only
    meaningful on hosts with >= 4 cores.

    Runs record wall-clock spans (:mod:`repro.obs.spans`), and each
    worker-count entry embeds the best run's ``phase_totals`` — where
    the wall time went (driver setup/feed/drain/merge, per-worker
    decode/probe/insert) — so phase shares are tracked run-over-run in
    ``BENCH_wallclock.json``. The span recorder's measured overhead is
    a few microseconds per batch (reported in the totals' source
    header), far below run-to-run noise.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    counts = [w for w in SCALING_WORKER_COUNTS if w <= max_workers]
    if not counts:
        counts = [1]
    base_n, generator, _ = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))
    records = list(generator(n, seed))
    config = JoinConfig(similarity=similarity, threshold=threshold)
    if batch_size is not None:
        config = config.replace(batch_size=batch_size)

    serial = run_serial(config, records)
    section: Dict[str, object] = {
        "corpus": corpus,
        "records": n,
        "shards": serial.num_shards,
        "batch_size": config.batch_size,
        "host_cpus": os.cpu_count(),
        "workers": {},
    }
    baseline_wall: Optional[float] = None
    for workers in counts:
        runner = ParallelJoinRunner(config, workers=workers, spans=True)
        best = None
        for _ in range(repeats):
            result = runner.run(records)
            if best is None or result.wall_s < best.wall_s:
                best = result
        correctness = {
            "matches_equal": best.matches == serial.matches,
            "operations_equal": best.operations == serial.operations,
            "events_equal": best.events == serial.events,
        }
        if baseline_wall is None:
            baseline_wall = best.wall_s
        speedup = baseline_wall / best.wall_s if best.wall_s > 0 else 0.0
        section["workers"][str(workers)] = {
            "wall_s": round(best.wall_s, 6),
            "throughput_rps": round(best.throughput, 1),
            "speedup": round(speedup, 3),
            "efficiency": round(speedup / workers, 3),
            "busy_s": [round(s["busy_s"], 6) for s in best.worker_stats],
            "correctness": correctness,
            "phase_totals": best.phase_totals(),
        }
    at4 = section["workers"].get("4")
    section["target"] = PARALLEL_SPEEDUP_TARGET
    section["speedup_at_4"] = at4["speedup"] if at4 else None
    section["meets_target"] = (
        at4["speedup"] >= PARALLEL_SPEEDUP_TARGET if at4 else None
    )
    cpus = os.cpu_count() or 1
    if cpus < 4:
        section["note"] = (
            f"host has {cpus} CPU core(s): the {PARALLEL_SPEEDUP_TARGET}x "
            "4-worker target is calibrated for >= 4 cores; timings here "
            "measure runtime overhead, not scaling"
        )
    return section


def telemetry_overhead_section(
    workers: int = 2,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Heartbeat-telemetry overhead check (``parallel.telemetry``).

    The same calibrated workload the scaling sweep uses is run through
    the process executor twice — telemetry off, then telemetry on at
    the default :data:`~repro.obs.timeseries.DEFAULT_HEARTBEAT_INTERVAL`
    — best-of-``repeats`` each. ``overhead_fraction`` is the relative
    wall-clock cost of the heartbeat channel (``on/off - 1``; negative
    values are run-to-run noise, reported as measured). The telemetry-on
    run's observables are diffed against
    :func:`~repro.parallel.runtime.run_serial` ground truth —
    ``correctness`` is the differential guarantee CI gates on, the
    timing target (:data:`TELEMETRY_OVERHEAD_TARGET`) is reported but
    never gated (shared runners are too noisy).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    from repro.obs.timeseries import DEFAULT_HEARTBEAT_INTERVAL

    base_n, generator, _ = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))
    records = list(generator(n, seed))
    config = JoinConfig(similarity=similarity, threshold=threshold)
    if batch_size is not None:
        config = config.replace(batch_size=batch_size)
    serial = run_serial(config, records)

    # Interleave off/on pairs (not all-off-then-all-on) so slow drift
    # on a time-shared host cancels instead of biasing the ratio.
    off = on = None
    for _ in range(repeats):
        result = ParallelJoinRunner(config, workers=workers).run(records)
        if off is None or result.wall_s < off.wall_s:
            off = result
        result = ParallelJoinRunner(
            config, workers=workers, telemetry=True
        ).run(records)
        if on is None or result.wall_s < on.wall_s:
            on = result
    overhead = on.wall_s / off.wall_s - 1.0 if off.wall_s > 0 else 0.0
    samples = on.telemetry_samples()
    dropped = sum(
        int(stats.get("heartbeats_dropped", 0) or 0)
        for stats in on.worker_stats
    )
    health_events = sum(
        1 for row in (on.telemetry or []) if row.get("kind") == "health"
    )
    return {
        "corpus": corpus,
        "records": n,
        "workers": workers,
        "interval_s": DEFAULT_HEARTBEAT_INTERVAL,
        "wall_off_s": round(off.wall_s, 6),
        "wall_on_s": round(on.wall_s, 6),
        "overhead_fraction": round(overhead, 4),
        "target": TELEMETRY_OVERHEAD_TARGET,
        "meets_target": overhead <= TELEMETRY_OVERHEAD_TARGET,
        "samples": samples,
        "dropped": dropped,
        "health_events": health_events,
        "correctness": {
            "matches_equal": on.matches == serial.matches,
            "operations_equal": on.operations == serial.operations,
            "events_equal": on.events == serial.events,
        },
    }


def trace_overhead_section(
    workers: int = 2,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Record-tracing overhead + latency digest (``parallel.latency``).

    Mirrors :func:`telemetry_overhead_section`: the calibrated workload
    runs through the process executor in interleaved off/on pairs —
    tracing off, then tracing on at the default
    :data:`~repro.obs.rectrace.DEFAULT_TRACE_SAMPLE` stride —
    best-of-``repeats`` each. ``overhead_fraction`` is the relative
    wall-clock cost of stamping and shipping the trace (``on/off -
    1``). The traced run also contributes the per-stage p50/p95/p99
    latency digest (``stages``) — the committed benchmark's record of
    what a sampled record experiences end to end. ``correctness`` diffs
    the traced run against :func:`~repro.parallel.runtime.run_serial`
    ground truth and is folded into :func:`correctness_ok`; the timing
    target (:data:`TRACE_OVERHEAD_TARGET`) is reported but never gated
    (shared runners are too noisy).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    from repro.obs.rectrace import DEFAULT_TRACE_SAMPLE

    base_n, generator, _ = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))
    records = list(generator(n, seed))
    config = JoinConfig(similarity=similarity, threshold=threshold)
    if batch_size is not None:
        config = config.replace(batch_size=batch_size)
    serial = run_serial(config, records)

    # Interleaved off/on pairs, same drift-cancelling discipline as the
    # telemetry section.
    off = on = None
    for _ in range(repeats):
        result = ParallelJoinRunner(config, workers=workers).run(records)
        if off is None or result.wall_s < off.wall_s:
            off = result
        result = ParallelJoinRunner(
            config, workers=workers, trace=True
        ).run(records)
        if on is None or result.wall_s < on.wall_s:
            on = result
    overhead = on.wall_s / off.wall_s - 1.0 if off.wall_s > 0 else 0.0
    header = on.trace_header or {}
    return {
        "corpus": corpus,
        "records": n,
        "workers": workers,
        "sample": DEFAULT_TRACE_SAMPLE,
        "wall_off_s": round(off.wall_s, 6),
        "wall_on_s": round(on.wall_s, 6),
        "overhead_fraction": round(overhead, 4),
        "target": TRACE_OVERHEAD_TARGET,
        "meets_target": overhead <= TRACE_OVERHEAD_TARGET,
        "traced": header.get("traced", 0),
        "events": header.get("events", 0),
        "stages": header.get("stages", {}),
        "correctness": {
            "matches_equal": on.matches == serial.matches,
            "operations_equal": on.operations == serial.operations,
            "events_equal": on.events == serial.events,
        },
    }


def archive_overhead_section(
    workers: int = 2,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Flight-recorder cost + fidelity check (``parallel.archive``).

    The calibrated workload runs once through the process executor,
    then the finished result is archived into a throwaway SQLite
    database best-of-``repeats`` times — exactly what the CLI's
    auto-capture does after every ``repro join --parallel``.
    ``overhead_fraction`` is ``archive_write_s / wall_run_s``: the
    archive write happens after the join finishes, so the fraction is
    purely additive latency on the invocation. ``correctness`` checks
    the run against :func:`~repro.parallel.runtime.run_serial` ground
    truth AND that the fingerprint reconstructed from the database is
    bit-identical to the in-memory one (``fingerprint_roundtrip``) —
    folded into :func:`correctness_ok`. The timing target
    (:data:`ARCHIVE_OVERHEAD_TARGET`) is reported but never gated.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    import tempfile

    from repro.obs.archive import RunArchive

    base_n, generator, _ = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))
    records = list(generator(n, seed))
    config = JoinConfig(similarity=similarity, threshold=threshold)
    if batch_size is not None:
        config = config.replace(batch_size=batch_size)
    serial = run_serial(config, records)
    result = None
    for _ in range(repeats):
        candidate = ParallelJoinRunner(config, workers=workers).run(records)
        if result is None or candidate.wall_s < result.wall_s:
            result = candidate

    write_s = None
    run_id = None
    roundtrip = False
    observables = 0
    with tempfile.TemporaryDirectory() as scratch:
        with RunArchive(os.path.join(scratch, "archive.db")) as archive:
            for _ in range(repeats):
                started = time.perf_counter()
                run_id = archive.record_parallel_run(
                    result, source="bench-overhead", seed=seed
                )
                elapsed = time.perf_counter() - started
                if write_s is None or elapsed < write_s:
                    write_s = elapsed
            stored = archive.fingerprint(run_id)
            roundtrip = stored == result.fingerprint()
            observables = len(stored["exact"]) + len(stored["banded"])
    overhead = write_s / result.wall_s if result.wall_s > 0 else 0.0
    return {
        "corpus": corpus,
        "records": n,
        "workers": workers,
        "wall_run_s": round(result.wall_s, 6),
        "archive_write_s": round(write_s, 6),
        "overhead_fraction": round(overhead, 4),
        "target": ARCHIVE_OVERHEAD_TARGET,
        "meets_target": overhead <= ARCHIVE_OVERHEAD_TARGET,
        "archived_observables": observables,
        "correctness": {
            "matches_equal": result.matches == serial.matches,
            "operations_equal": result.operations == serial.operations,
            "events_equal": result.events == serial.events,
            "fingerprint_roundtrip": roundtrip,
        },
    }


def _transport_io(totals: Dict[str, object]) -> Dict[str, float]:
    """Codec-tax metrics of one run's ``phase_totals``.

    Driver side: ``encode`` (building the wire frames / column parts)
    plus the transport write (``pipe_write`` under the pipe transport,
    ``shm_write`` — ring copy + credit waits + descriptor sends — under
    shm; whichever is unused totals 0). Worker side: ``decode`` plus
    the blocked read wait (``pipe_read``/``shm_read``), summed over
    workers. These are exactly the phases the zero-copy transport
    exists to shrink.
    """
    driver = totals["driver"]
    encode = float(driver.get("encode", 0.0))
    write = float(driver.get("pipe_write", 0.0)) + float(
        driver.get("shm_write", 0.0)
    )
    decode = read = 0.0
    for entry in totals["workers"].values():
        decode += float(entry.get("decode", 0.0))
        read += float(entry.get("pipe_read", 0.0)) + float(
            entry.get("shm_read", 0.0)
        )
    return {
        "encode_s": encode,
        "write_s": write,
        "decode_s": decode,
        "read_s": read,
        "driver_io_s": encode + write,
        "worker_io_s": decode + read,
    }


def transport_comparison_section(
    workers: int = 2,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    corpus: str = HEADLINE_CORPUS,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Pipe vs. shared-memory transport A/B (``parallel.transport``).

    The calibrated workload runs through the process executor with
    spans on, in interleaved pipe/shm pairs (drift on a time-shared
    host cancels instead of biasing the ratio). Each transport reports
    its best wall time plus the best-of-repeats codec-tax phase sums
    (:func:`_transport_io`): the driver's ``encode`` + transport write
    and the workers' ``decode`` + blocked read. The acceptance claim is
    ``shm_wins`` — both sums strictly smaller under shm, i.e. the
    zero-copy path really did kill the codec tax rather than move it.
    Observables of both runs are diffed against
    :func:`~repro.parallel.runtime.run_serial` ground truth and folded
    into :func:`correctness_ok`; like every wall-clock number, the
    timings themselves are reported, never gated, in CI.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    from repro.parallel.shm import shm_supported

    ok, reason = shm_supported()
    if not ok:
        return {"supported": False, "reason": reason}
    base_n, generator, _ = WALLCLOCK_CORPORA[corpus]
    n = max(100, int(base_n * scale))
    records = list(generator(n, seed))
    config = JoinConfig(similarity=similarity, threshold=threshold)
    if batch_size is not None:
        config = config.replace(batch_size=batch_size)
    serial = run_serial(config, records)

    best: Dict[str, object] = {}
    io_best: Dict[str, Dict[str, float]] = {}
    for _ in range(repeats):
        for transport in ("pipe", "shm"):
            result = ParallelJoinRunner(
                config, workers=workers, spans=True, transport=transport
            ).run(records)
            io = _transport_io(result.phase_totals())
            if transport not in best or result.wall_s < best[transport].wall_s:
                best[transport] = result
            held = io_best.setdefault(transport, io)
            for key, value in io.items():
                held[key] = min(held[key], value)

    section: Dict[str, object] = {
        "supported": True,
        "corpus": corpus,
        "records": n,
        "workers": workers,
        "batch_size": config.batch_size,
    }
    for transport in ("pipe", "shm"):
        result = best[transport]
        section[transport] = {
            "wall_s": round(result.wall_s, 6),
            "io": {k: round(v, 6) for k, v in io_best[transport].items()},
            "correctness": {
                "matches_equal": result.matches == serial.matches,
                "operations_equal": result.operations == serial.operations,
                "events_equal": result.events == serial.events,
            },
        }
    pipe_io, shm_io = io_best["pipe"], io_best["shm"]
    section["driver_io_speedup"] = round(
        pipe_io["driver_io_s"] / shm_io["driver_io_s"], 3
    ) if shm_io["driver_io_s"] > 0 else None
    section["worker_io_speedup"] = round(
        pipe_io["worker_io_s"] / shm_io["worker_io_s"], 3
    ) if shm_io["worker_io_s"] > 0 else None
    section["shm_wins"] = {
        "driver_io": shm_io["driver_io_s"] < pipe_io["driver_io_s"],
        "worker_io": shm_io["worker_io_s"] < pipe_io["worker_io_s"],
    }
    return section


def wallclock_suite(
    corpora: Optional[List[str]] = None,
    repeats: int = 3,
    similarity: str = "jaccard",
    threshold: float = 0.8,
    seed: int = SEED,
    scale: float = 1.0,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> Dict[str, object]:
    """Run the wall-clock comparison; return the report payload.

    Parameters
    ----------
    corpora:
        Corpus names from :data:`WALLCLOCK_CORPORA` (default: all).
    repeats:
        Repeats per engine/phase; the best time is reported.
    scale:
        Multiplier on the calibrated record counts (CI smoke runs can
        pass < 1 for speed; the headline target is calibrated at 1.0).
    workers:
        When set, also run the multi-core scaling sweep up to this many
        worker processes and attach it as ``payload["parallel"]
        ["scaling"]`` (see :func:`parallel_scaling_section`), plus the
        heartbeat-telemetry overhead check as ``payload["parallel"]
        ["telemetry"]`` (see :func:`telemetry_overhead_section`) and
        the record-tracing overhead + per-stage latency digest as
        ``payload["parallel"]["latency"]`` (see
        :func:`trace_overhead_section`).
    batch_size:
        IPC batch size for the scaling sweep (default:
        ``JoinConfig.batch_size``).

    The returned payload (serialised as ``BENCH_wallclock.json``)::

        {
          "schema": "repro/wallclock/v1",
          "similarity": ..., "threshold": ..., "seed": ..., "repeats": ...,
          "corpora": {
            "<name>": {
              "records": ..., "generator": {...},
              "reference": {"insert_s": ..., "probe_s": ...},
              "columnar":  {"insert_s": ..., "probe_s": ...},
              "probe_speedup": ..., "insert_speedup": ...,
              "combined_speedup": ..., "results": ...,
              "posting_scans": ..., "candidate_admits": ..., "result_emits": ...,
              "correctness": {"matches_equal": ..., "operations_equal": ...,
                              "events_equal": ..., "live_postings_equal": ...}
            }, ...
          },
          "verify_micro": {...},
          "headline": {"corpus": "AOL", "probe_speedup": ...,
                       "target": 3.0, "meets_target": ...}
        }
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    names = list(corpora) if corpora is not None else list(WALLCLOCK_CORPORA)
    unknown = [name for name in names if name not in WALLCLOCK_CORPORA]
    if unknown:
        raise ValueError(
            f"unknown wallclock corpora {unknown}; "
            f"available: {sorted(WALLCLOCK_CORPORA)}"
        )
    payload: Dict[str, object] = {
        "schema": "repro/wallclock/v1",
        "similarity": similarity,
        "threshold": threshold,
        "seed": seed,
        "repeats": repeats,
        "scale": scale,
        "corpora": {},
    }
    verify_records: List[Record] = []
    for name in names:
        base_n, generator, gen_config = WALLCLOCK_CORPORA[name]
        n = max(100, int(base_n * scale))
        records = list(generator(n, seed))
        if not verify_records:
            verify_records = records
        reference = _run_engine(
            ReferenceStreamingSetJoin, records, similarity, threshold, repeats
        )
        columnar = _run_engine(
            StreamingSetJoin, records, similarity, threshold, repeats
        )
        correctness = {
            "matches_equal": reference["matches"] == columnar["matches"],
            "operations_equal": reference["operations"] == columnar["operations"],
            "events_equal": reference["events"] == columnar["events"],
            "live_postings_equal":
                reference["live_postings"] == columnar["live_postings"],
        }
        operations = columnar["operations"]
        payload["corpora"][name] = {
            "records": n,
            "generator": dict(gen_config),
            "reference": {
                "insert_s": round(reference["insert_s"], 6),
                "probe_s": round(reference["probe_s"], 6),
            },
            "columnar": {
                "insert_s": round(columnar["insert_s"], 6),
                "probe_s": round(columnar["probe_s"], 6),
            },
            "probe_speedup": round(
                reference["probe_s"] / columnar["probe_s"], 3
            ),
            "insert_speedup": round(
                reference["insert_s"] / columnar["insert_s"], 3
            ),
            "combined_speedup": round(
                (reference["insert_s"] + reference["probe_s"])
                / (columnar["insert_s"] + columnar["probe_s"]),
                3,
            ),
            "results": len(columnar["matches"]),
            "posting_scans": int(operations.get("posting_scan", 0)),
            "candidate_admits": int(operations.get("candidate_admit", 0)),
            "result_emits": int(operations.get("result_emit", 0)),
            "correctness": correctness,
        }
    payload["verify_micro"] = _verify_micro(verify_records, threshold, repeats)
    frontier_corpus = (
        HEADLINE_CORPUS if HEADLINE_CORPUS in payload["corpora"] else names[0]
    )
    payload["sketch"] = {
        "frontier": sketch_frontier_section(
            repeats=repeats,
            similarity=similarity,
            threshold=threshold,
            seed=seed,
            scale=scale,
            corpus=frontier_corpus,
        ),
    }
    headline_corpus = (
        HEADLINE_CORPUS if HEADLINE_CORPUS in payload["corpora"] else names[0]
    )
    headline_entry = payload["corpora"][headline_corpus]
    payload["headline"] = {
        "corpus": headline_corpus,
        "probe_speedup": headline_entry["probe_speedup"],
        "target": PROBE_SPEEDUP_TARGET,
        "meets_target": headline_entry["probe_speedup"] >= PROBE_SPEEDUP_TARGET,
    }
    if workers is not None:
        payload["parallel"] = {
            "scaling": parallel_scaling_section(
                max_workers=workers,
                repeats=repeats,
                similarity=similarity,
                threshold=threshold,
                seed=seed,
                scale=scale,
                batch_size=batch_size,
            ),
            # The overhead sections report a *difference* of two nearby
            # wall times, so their noise floor is higher than a raw
            # timing's: give them at least 5 interleaved repeats each
            # (an extra repeat pair costs ~2 x one 2-worker run).
            "telemetry": telemetry_overhead_section(
                workers=min(2, workers),
                repeats=max(repeats, 5),
                similarity=similarity,
                threshold=threshold,
                seed=seed,
                scale=scale,
                batch_size=batch_size,
            ),
            "latency": trace_overhead_section(
                workers=min(2, workers),
                repeats=max(repeats, 5),
                similarity=similarity,
                threshold=threshold,
                seed=seed,
                scale=scale,
                batch_size=batch_size,
            ),
            "transport": transport_comparison_section(
                workers=min(2, workers),
                repeats=max(repeats, 5),
                similarity=similarity,
                threshold=threshold,
                seed=seed,
                scale=scale,
                batch_size=batch_size,
            ),
            # Archiving is a single post-run write, not an in-loop
            # perturbation, so plain ``repeats`` is enough.
            "archive": archive_overhead_section(
                workers=min(2, workers),
                repeats=repeats,
                similarity=similarity,
                threshold=threshold,
                seed=seed,
                scale=scale,
                batch_size=batch_size,
            ),
        }
    return payload


def correctness_ok(payload: Dict[str, object]) -> bool:
    """True when every corpus passed every cross-engine equality check
    — including, when present, the scaling sweep's parallel-vs-serial
    diffs at every worker count."""
    engines_ok = all(
        all(entry["correctness"].values())
        for entry in payload["corpora"].values()
    )
    scaling = payload.get("parallel", {}).get("scaling", {})
    parallel_ok = all(
        all(entry["correctness"].values())
        for entry in scaling.get("workers", {}).values()
    )
    telemetry = payload.get("parallel", {}).get("telemetry")
    telemetry_ok = (
        all(telemetry["correctness"].values()) if telemetry else True
    )
    latency = payload.get("parallel", {}).get("latency")
    latency_ok = (
        all(latency["correctness"].values()) if latency else True
    )
    archive = payload.get("parallel", {}).get("archive")
    archive_ok = (
        all(archive["correctness"].values()) if archive else True
    )
    transport = payload.get("parallel", {}).get("transport")
    transport_ok = (
        all(
            all(transport[name]["correctness"].values())
            for name in ("pipe", "shm")
        )
        if transport and transport.get("supported")
        else True
    )
    frontier = payload.get("sketch", {}).get("frontier")
    frontier_ok = (
        all(frontier["correctness"].values()) if frontier else True
    )
    return (
        engines_ok and parallel_ok and telemetry_ok and latency_ok
        and archive_ok and transport_ok and frontier_ok
    )


def render_wallclock(payload: Dict[str, object]) -> str:
    """Human-readable summary table of a wallclock payload."""
    lines = [
        f"wallclock: {payload['similarity']} θ={payload['threshold']} "
        f"seed={payload['seed']} repeats={payload['repeats']}"
    ]
    for name, entry in payload["corpora"].items():
        ref, col = entry["reference"], entry["columnar"]
        ok = all(entry["correctness"].values())
        lines.append(
            f"  {name:6s} n={entry['records']:<6d} "
            f"probe {ref['probe_s']*1e3:8.1f}ms -> {col['probe_s']*1e3:7.1f}ms "
            f"(x{entry['probe_speedup']:.2f})  "
            f"insert {ref['insert_s']*1e3:6.1f}ms -> {col['insert_s']*1e3:6.1f}ms "
            f"(x{entry['insert_speedup']:.2f})  "
            f"correctness {'ok' if ok else 'MISMATCH'}"
        )
    headline = payload["headline"]
    lines.append(
        f"  headline: {headline['corpus']} probe x{headline['probe_speedup']:.2f} "
        f"(target x{headline['target']:.1f}: "
        f"{'met' if headline['meets_target'] else 'NOT met'})"
    )
    frontier = payload.get("sketch", {}).get("frontier")
    if frontier:
        lines.append(
            f"  sketch frontier: {frontier['corpus']} "
            f"n={frontier['records']} exact probe "
            f"{frontier['exact']['probe_s']*1e3:.1f}ms "
            f"({frontier['exact']['pairs']} pairs)"
        )
        for name, entry in frontier["grid"].items():
            lines.append(
                f"    {name:>6s}  probe {entry['probe_s']*1e3:7.1f}ms "
                f"(x{entry['probe_speedup']:.2f})  "
                f"recall {entry['recall']:.4f} "
                f"(expected {entry['expected_recall']:.4f})  "
                f"precision {entry['precision']:.4f}  "
                f"rss x{entry['rss_vs_exact']:.2f}"
            )
        sk = frontier["headline"]
        ok = all(frontier["correctness"].values())
        lines.append(
            f"    headline: {sk['config']} x{sk['probe_speedup']:.2f} probe "
            f"at recall {sk['recall']:.4f} "
            f"(targets x{sk['speedup_target']:.1f} at "
            f">= {sk['recall_target']:.2f}: "
            f"{'met' if sk['meets_target'] else 'NOT met'})  "
            f"correctness {'ok' if ok else 'MISMATCH'}"
        )
    scaling = payload.get("parallel", {}).get("scaling")
    if scaling:
        lines.append(
            f"  parallel scaling: {scaling['corpus']} n={scaling['records']} "
            f"shards={scaling['shards']} batch={scaling['batch_size']} "
            f"host_cpus={scaling['host_cpus']}"
        )
        for workers, entry in scaling["workers"].items():
            ok = all(entry["correctness"].values())
            totals = entry.get("phase_totals")
            coverage = (
                f"  spans cover {totals['driver_coverage']:.0%}"
                if totals else ""
            )
            lines.append(
                f"    workers={workers:>2s}  wall {entry['wall_s']*1e3:8.1f}ms  "
                f"{entry['throughput_rps']:9.0f} rec/s  "
                f"speedup x{entry['speedup']:.2f}  "
                f"eff {entry['efficiency']:.2f}  "
                f"correctness {'ok' if ok else 'MISMATCH'}{coverage}"
            )
        if scaling.get("note"):
            lines.append(f"    note: {scaling['note']}")
    telemetry = payload.get("parallel", {}).get("telemetry")
    if telemetry:
        ok = all(telemetry["correctness"].values())
        lines.append(
            f"  telemetry overhead: workers={telemetry['workers']} "
            f"interval={telemetry['interval_s']}s  "
            f"wall {telemetry['wall_off_s']*1e3:.1f}ms -> "
            f"{telemetry['wall_on_s']*1e3:.1f}ms "
            f"({telemetry['overhead_fraction']:+.1%}, "
            f"target <= {telemetry['target']:.0%}: "
            f"{'met' if telemetry['meets_target'] else 'NOT met'})  "
            f"{telemetry['samples']} samples, {telemetry['dropped']} dropped  "
            f"correctness {'ok' if ok else 'MISMATCH'}"
        )
    latency = payload.get("parallel", {}).get("latency")
    if latency:
        ok = all(latency["correctness"].values())
        e2e = latency.get("stages", {}).get("e2e", {})
        digest = (
            f"e2e p50 {e2e['p50_s']*1e3:.1f}ms p99 {e2e['p99_s']*1e3:.1f}ms  "
            if e2e else ""
        )
        lines.append(
            f"  trace overhead: workers={latency['workers']} "
            f"sample={latency['sample']}  "
            f"wall {latency['wall_off_s']*1e3:.1f}ms -> "
            f"{latency['wall_on_s']*1e3:.1f}ms "
            f"({latency['overhead_fraction']:+.1%}, "
            f"target <= {latency['target']:.0%}: "
            f"{'met' if latency['meets_target'] else 'NOT met'})  "
            f"{latency['traced']} records traced  {digest}"
            f"correctness {'ok' if ok else 'MISMATCH'}"
        )
    transport = payload.get("parallel", {}).get("transport")
    if transport:
        if not transport.get("supported"):
            lines.append(
                f"  transport: shm unsupported ({transport.get('reason')})"
            )
        else:
            ok = all(
                all(transport[name]["correctness"].values())
                for name in ("pipe", "shm")
            )
            wins = transport["shm_wins"]
            lines.append(
                f"  transport: workers={transport['workers']} "
                f"batch={transport['batch_size']}  "
                f"wall pipe {transport['pipe']['wall_s']*1e3:.1f}ms / "
                f"shm {transport['shm']['wall_s']*1e3:.1f}ms  "
                f"driver io x{transport['driver_io_speedup']:.2f} "
                f"worker io x{transport['worker_io_speedup']:.2f} "
                f"(shm wins: driver "
                f"{'yes' if wins['driver_io'] else 'NO'}, worker "
                f"{'yes' if wins['worker_io'] else 'NO'})  "
                f"correctness {'ok' if ok else 'MISMATCH'}"
            )
    archive = payload.get("parallel", {}).get("archive")
    if archive:
        ok = all(archive["correctness"].values())
        lines.append(
            f"  archive overhead: workers={archive['workers']}  "
            f"run {archive['wall_run_s']*1e3:.1f}ms + "
            f"write {archive['archive_write_s']*1e3:.1f}ms "
            f"({archive['overhead_fraction']:+.1%}, "
            f"target <= {archive['target']:.0%}: "
            f"{'met' if archive['meets_target'] else 'NOT met'})  "
            f"{archive['archived_observables']} observables  "
            f"correctness {'ok' if ok else 'MISMATCH'}"
        )
    return "\n".join(lines)
