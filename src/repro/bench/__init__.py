"""Benchmark harness: method suites, sweeps and table reporters.

The modules here are what the ``benchmarks/`` experiment files call to
regenerate each table/figure of the paper's evaluation (see the
experiment index in DESIGN.md and the paper-vs-measured record in
EXPERIMENTS.md).
"""

from repro.bench.harness import ExperimentRunner, run_methods, standard_configs
from repro.bench.report import format_series, format_table
from repro.bench.sweeps import sweep_thresholds, sweep_workers
from repro.bench.wallclock import render_wallclock, wallclock_suite

__all__ = [
    "ExperimentRunner",
    "format_series",
    "format_table",
    "render_wallclock",
    "run_methods",
    "standard_configs",
    "sweep_thresholds",
    "sweep_workers",
    "wallclock_suite",
]
