"""Plain-text tables and series — the benches print what the paper plots."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 1,
) -> str:
    """One row per x value, one column per named series (figure data)."""
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = round(values[index], precision)
        rows.append(row)
    return format_table(rows, [x_label, *series], title=title)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
