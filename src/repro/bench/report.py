"""Plain-text tables and series — the benches print what the paper plots.

Also the bridge from the observability exports back to the experiment
headlines: :func:`headline_from_metrics` recomputes E2 (throughput),
E4 (communication cost) and E5 (load balance) from a metrics dump
alone, and the harness asserts the recomputation matches the report's
numbers exactly — every table in EXPERIMENTS.md is derivable from the
same instrumented path a production scrape would see.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.exporters import metric_series

BENCH_SUMMARY_SCHEMA_VERSION = 1


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 1,
) -> str:
    """One row per x value, one column per named series (figure data)."""
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = round(values[index], precision)
        rows.append(row)
    return format_table(rows, [x_label, *series], title=title)


def bench_summary(reports: Dict[str, object], **meta: object) -> Dict[str, object]:
    """Machine-readable digest of one bench invocation.

    ``reports`` maps method label to a
    :class:`~repro.core.join.JoinRunReport`; ``meta`` carries the bench
    configuration (corpus, records, threshold, workers, seed, …). The
    result is what ``python -m repro bench`` writes as
    ``BENCH_summary.json`` — the numbers downstream dashboards and the
    README table read.
    """
    methods: Dict[str, Dict[str, float]] = {}
    for label in sorted(reports):
        cluster = reports[label].cluster
        methods[label] = {
            "throughput": cluster.capacity_throughput,
            "messages_per_record": cluster.messages_per_record,
            "bytes_per_record": cluster.bytes_per_record,
            "load_balance": cluster.load_balance,
            "records": cluster.records,
            "results": cluster.results,
        }
    return {
        "schema": BENCH_SUMMARY_SCHEMA_VERSION,
        **meta,
        "methods": methods,
    }


def write_bench_summary(path: str, summary: Dict[str, object]) -> str:
    """Write a :func:`bench_summary` dict deterministically."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def headline_from_metrics(
    dump: Dict[str, object], join_component: Optional[str] = None
) -> Dict[str, float]:
    """Recompute the E2/E4/E5 headlines from a metrics dump.

    ``dump`` is the JSON form of a run's metrics (either the dict from
    :func:`repro.obs.exporters.metrics_to_json` or a loaded file).
    Returns exactly the numbers the cluster report computes — same
    inputs, same operation order — so equality is bit-exact:

    * ``throughput`` (E2): records / max task busy seconds;
    * ``messages_per_record`` / ``bytes_per_record`` (E4): summed
      channel traffic over records;
    * ``load_balance`` (E5): max/avg busy seconds across the join
      component's tasks.
    """
    if join_component is None:
        info = metric_series(dump, "run_info")
        join_component = (
            info[0]["labels"].get("join_component", "join") if info else "join"
        )

    busy: Dict[tuple, float] = {}
    for row in metric_series(dump, "task_busy_seconds"):
        labels = row["labels"]
        key = (labels["component"], int(labels["task"]))
        busy[key] = _num(row["value"])
    records = _gauge_value(dump, "run_records")

    max_busy = max(busy.values(), default=0.0)
    throughput = records / max_busy if max_busy > 0 else float("inf")

    messages = sum(_num(r["value"]) for r in metric_series(dump, "channel_messages"))
    total_bytes = sum(_num(r["value"]) for r in metric_series(dump, "channel_bytes"))

    # Same summation order as the report: tasks sorted by (component,
    # task index) — float sums are order-sensitive.
    join_busy = [
        value
        for (component, _task), value in sorted(busy.items())
        if component == join_component
    ]
    avg_busy = sum(join_busy) / len(join_busy) if join_busy else 0.0
    balance = (max(join_busy) / avg_busy) if avg_busy > 0 else 1.0

    return {
        "records": records,
        "throughput": throughput,
        "messages_per_record": messages / records if records else 0.0,
        "bytes_per_record": total_bytes / records if records else 0.0,
        "load_balance": balance,
    }


def _gauge_value(dump: Dict[str, object], name: str) -> float:
    series = metric_series(dump, name)
    return _num(series[0]["value"]) if series else 0.0


def _num(value: object) -> float:
    """Undo the exporter's non-finite-float string encoding."""
    return float(value)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
