"""Method suites and the experiment runner."""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.report import headline_from_metrics
from repro.core.config import JoinConfig
from repro.core.join import DistributedStreamJoin, JoinRunReport
from repro.obs.exporters import metrics_to_json
from repro.obs.observer import RunObserver
from repro.storm.costmodel import CostModel, NetworkModel
from repro.streams.stream import RecordStream


def standard_configs(
    num_workers: int = 8,
    threshold: float = 0.8,
    similarity: str = "jaccard",
    window_seconds: float = math.inf,
    include: Optional[Sequence[str]] = None,
    **overrides,
) -> Dict[str, JoinConfig]:
    """The method suite every comparative experiment runs.

    ===========  ======================================================
    label        scheme
    ===========  ======================================================
    ``BRD``      broadcast probing (naive baseline)
    ``PRE``      prefix-based distribution (offline-style baseline)
    ``LEN-U``    length-based, uniform partitions
    ``LEN``      length-based, load-aware partitions (paper, no bundles)
    ``LEN+BUN``  full system: load-aware + bundles + batch verification
    ===========  ======================================================

    ``include`` restricts the suite; extra keyword arguments override
    every config (e.g. ``collect_pairs=True`` in tests).

    One label is opt-in rather than part of the default suite: ``SKT``,
    the approximate sketch tier (``mode="approx"``, MinHash/LSH
    candidate generation). It only joins the suite when ``include``
    names it, because its match set is a *subset* of the exact ones —
    mixing it into exactness-gated comparisons (baseline fingerprints,
    bit-identical differentials) by default would poison them.
    """
    base = dict(
        threshold=threshold,
        similarity=similarity,
        num_workers=num_workers,
        window_seconds=window_seconds,
        **overrides,
    )
    suite = {
        "BRD": JoinConfig(distribution="broadcast", **base),
        "PRE": JoinConfig(distribution="prefix", **base),
        "LEN-U": JoinConfig(distribution="length", partitioning="uniform", **base),
        "LEN": JoinConfig(distribution="length", partitioning="load_aware", **base),
        "LEN+BUN": JoinConfig(
            distribution="length",
            partitioning="load_aware",
            use_bundles=True,
            bundle_threshold=max(0.9, threshold),
            **base,
        ),
    }
    if include is not None:
        if "SKT" in include:
            suite["SKT"] = JoinConfig(mode="approx", **base)
        unknown = set(include) - set(suite)
        if unknown:
            raise ValueError(f"unknown method labels: {sorted(unknown)}")
        suite = {label: suite[label] for label in include}
    return suite


def run_methods(
    stream: RecordStream,
    configs: Dict[str, JoinConfig],
    cost: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    observer_factory: Optional[Callable[[str], Optional[RunObserver]]] = None,
) -> Dict[str, JoinRunReport]:
    """Run every config over the same stream; reports keyed by label.

    ``observer_factory`` (label → observer) switches on tracing or a
    profiling timeline per method run; each report's observer is
    reachable via its ``obs`` registry either way.
    """
    reports: Dict[str, JoinRunReport] = {}
    for label, config in configs.items():
        observer = observer_factory(label) if observer_factory else None
        reports[label] = DistributedStreamJoin(
            config, cost=cost, network=network
        ).run(stream, observer=observer)
    return reports


def verify_instrumented_headlines(report: JoinRunReport) -> Dict[str, float]:
    """Recompute the E2/E4/E5 headlines from the run's metrics export
    and assert they match the cluster report exactly.

    Every experiment table goes through the report; this check (used
    by tests and the smoke command) proves the exported registry is
    the same instrumented path, not a diverging copy.
    """
    recomputed = headline_from_metrics(metrics_to_json(report.obs))
    expected = {
        "records": float(report.cluster.records),
        "throughput": report.cluster.capacity_throughput,
        "messages_per_record": report.cluster.messages_per_record,
        "bytes_per_record": report.cluster.bytes_per_record,
        "load_balance": report.cluster.load_balance,
    }
    mismatches = {
        key: (recomputed[key], expected[key])
        for key in expected
        if recomputed[key] != expected[key]
    }
    if mismatches:
        raise AssertionError(
            f"metrics-derived headlines diverge from the report: {mismatches}"
        )
    return recomputed


class ExperimentRunner:
    """Convenience wrapper: one stream, many methods, tabular rows.

    >>> from repro.datasets import synthetic_aol
    >>> runner = ExperimentRunner(synthetic_aol(2000, seed=3))
    >>> rows = runner.compare(standard_configs(num_workers=4))
    >>> sorted(rows[0])[:2]
    ['balance', 'bytes/rec']
    """

    def __init__(
        self,
        stream: RecordStream,
        cost: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
    ):
        self.stream = stream
        self.cost = cost
        self.network = network
        self.reports: Dict[str, JoinRunReport] = {}
        self.observers: Dict[str, RunObserver] = {}

    def run(
        self,
        label: str,
        config: JoinConfig,
        observer: Optional[RunObserver] = None,
    ) -> JoinRunReport:
        report = DistributedStreamJoin(
            config, cost=self.cost, network=self.network
        ).run(self.stream, observer=observer)
        self.reports[label] = report
        if observer is not None:
            self.observers[label] = observer
        return report

    def compare(self, configs: Dict[str, JoinConfig]) -> List[dict]:
        """Run a suite and return one summary row per method."""
        rows = []
        for label, config in configs.items():
            report = self.run(label, config)
            row = report.summary()
            row["method"] = label
            rows.append(row)
        return rows
