"""Parameter sweeps shared by the experiment files."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import run_methods, standard_configs
from repro.core.join import JoinRunReport
from repro.storm.costmodel import CostModel, NetworkModel
from repro.streams.stream import RecordStream

StreamBuilder = Callable[..., RecordStream]
Extractor = Callable[[JoinRunReport], float]


def sweep_thresholds(
    stream: RecordStream,
    thresholds: Sequence[float],
    metric: Extractor = lambda report: report.throughput,
    methods: Optional[Sequence[str]] = None,
    num_workers: int = 8,
    cost: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    **config_overrides,
) -> Dict[str, List[float]]:
    """``metric`` per method per threshold (one figure's series)."""
    series: Dict[str, List[float]] = {}
    for threshold in thresholds:
        configs = standard_configs(
            num_workers=num_workers,
            threshold=threshold,
            include=methods,
            **config_overrides,
        )
        reports = run_methods(stream, configs, cost=cost, network=network)
        for label, report in reports.items():
            series.setdefault(label, []).append(metric(report))
    return series


def sweep_workers(
    stream: RecordStream,
    worker_counts: Sequence[int],
    metric: Extractor = lambda report: report.throughput,
    methods: Optional[Sequence[str]] = None,
    threshold: float = 0.8,
    cost: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    **config_overrides,
) -> Dict[str, List[float]]:
    """``metric`` per method per worker count (the scalability figure)."""
    series: Dict[str, List[float]] = {}
    for workers in worker_counts:
        configs = standard_configs(
            num_workers=workers,
            threshold=threshold,
            include=methods,
            **config_overrides,
        )
        reports = run_methods(stream, configs, cost=cost, network=network)
        for label, report in reports.items():
            series.setdefault(label, []).append(metric(report))
    return series
