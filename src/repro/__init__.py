"""repro — Distributed Streaming Set Similarity Join (ICDE 2020).

A full reproduction of the paper's system in pure Python:

* the **length-based distribution framework** — route streaming records
  to join workers by length: one index copy, no replication, small
  communication cost (:mod:`repro.routing`);
* **load-aware length partitioning** — balance workers by estimated
  local join cost (:mod:`repro.partition`);
* the **bundle-based join** — group highly similar records on the fly
  and index bundles to cut filtering cost (:mod:`repro.core.bundle`);
* **batch verification** — verify a probe against a whole bundle via
  the representative plus per-member token diffs
  (:mod:`repro.core.verify`);
* the **baselines** it is compared against — prefix-based and broadcast
  distribution;
* everything underneath: a set-similarity toolkit
  (:mod:`repro.similarity`), a deterministic Storm-like cluster
  simulator (:mod:`repro.storm`), streaming/windowing semantics
  (:mod:`repro.streams`), synthetic evaluation corpora
  (:mod:`repro.datasets`) and the benchmark harness
  (:mod:`repro.bench`).

Quickstart::

    from repro import DistributedStreamJoin, JoinConfig
    from repro.datasets import synthetic_tweet

    cfg = JoinConfig(similarity="jaccard", threshold=0.8, num_workers=8,
                     distribution="length", partitioning="load_aware",
                     use_bundles=True)
    report = DistributedStreamJoin(cfg).run(synthetic_tweet(20_000, seed=7))
    print(report.method, report.throughput, report.messages_per_record)
"""

from repro.core.config import JoinConfig
from repro.core.join import DistributedStreamJoin, JoinRunReport
from repro.core.local_join import MatchResult, StreamingSetJoin
from repro.core.reference import naive_join
from repro.records import Record, pair_key
from repro.similarity.functions import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    SimilarityFunction,
    get_similarity,
)
from repro.streams.stream import RecordStream
from repro.streams.window import SlidingWindow

__version__ = "1.0.0"

__all__ = [
    "Cosine",
    "Dice",
    "DistributedStreamJoin",
    "Jaccard",
    "JoinConfig",
    "JoinRunReport",
    "MatchResult",
    "Overlap",
    "Record",
    "RecordStream",
    "SimilarityFunction",
    "SlidingWindow",
    "StreamingSetJoin",
    "get_similarity",
    "naive_join",
    "pair_key",
    "__version__",
]
