"""Streaming MinHash signatures with LSH banding (DESIGN §15).

A record's signature is ``perms`` independent minimum hash values over
its token set: lane ``i`` applies the universal hash

    h_i(x) = (a_i * x + b_i) mod (2^61 - 1)

with per-lane parameters drawn from a seeded :class:`random.Random`, so
the whole scheme is a pure function of ``(perms, bands, seed)`` and two
processes configured alike produce identical signatures — the property
the band router and the sharded engines rely on.

Two facts make this fast enough to beat the exact prefix filter in pure
Python:

* **per-token hash caching** — token vocabularies are small relative to
  stream length, so lane hashes for a token are computed once and the
  signature of a record is an elementwise ``min`` over cached tuples;
* **per-record sketch caching** — streaming corpora are duplicate-heavy
  (the AOL generator re-emits whole token sets), so ``(signature,
  band keys)`` is memoised by the canonical token tuple and a repeated
  record costs one dict hit.

Signatures are mergeable (the SetSketch motivation): the signature of a
union is the elementwise minimum of the signatures, which
:func:`merge_signatures` and the incremental :meth:`MinHashScheme.extend`
expose for callers that grow a set one token at a time.

Band keys are Python ``hash`` values of the per-band row slices. Hashing
of ``int`` tuples is value-determined (``PYTHONHASHSEED`` only salts
``str``/``bytes``), so keys agree across driver and worker processes.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Sequence, Tuple, Union

from repro.records import Record

__all__ = [
    "DEFAULT_SEED",
    "MinHashScheme",
    "estimate_jaccard",
    "merge_signatures",
]

#: Seed shared by every default-configured scheme in the repo (the
#: corpus seed of the committed benches, for artefact provenance).
DEFAULT_SEED = 20200420

#: Mersenne prime 2^61 - 1: modulus of the universal hash family. Large
#: enough that min-collisions between distinct tokens are negligible,
#: small enough that ``a * x + b`` stays a cheap machine-word-ish int.
_MERSENNE_P = (1 << 61) - 1

#: Entries kept in each memo before it is dropped wholesale — a safety
#: valve for adversarial streams of all-distinct records; observables
#: never depend on cache hits, only wall time does.
_CACHE_LIMIT = 1 << 20

Signature = Tuple[int, ...]
BandKeys = Tuple[int, ...]


class MinHashScheme:
    """A fixed family of ``perms`` hash lanes folded into ``bands`` bands.

    ``perms`` must be a positive multiple of ``bands``; each band covers
    ``rows = perms // bands`` consecutive lanes. Two records collide in
    band ``j`` iff their signatures agree on all of that band's rows —
    probability ``s^rows`` per band under the permutation model, hence
    ``1 - (1 - s^rows)^bands`` overall (see
    :func:`repro.sketch.analysis.collision_probability`).
    """

    __slots__ = (
        "perms", "bands", "rows", "seed",
        "_a", "_b", "_token_memo", "_sketch_memo",
    )

    def __init__(self, perms: int = 64, bands: int = 8,
                 seed: int = DEFAULT_SEED):
        if perms < 1:
            raise ValueError(f"perms must be >= 1, got {perms}")
        if bands < 1:
            raise ValueError(f"bands must be >= 1, got {bands}")
        if perms % bands:
            raise ValueError(
                f"bands must divide perms evenly: {bands} bands over "
                f"{perms} permutations leaves a ragged band"
            )
        self.perms = perms
        self.bands = bands
        self.rows = perms // bands
        self.seed = seed
        rng = random.Random(seed)
        self._a = tuple(rng.randrange(1, _MERSENNE_P) for _ in range(perms))
        self._b = tuple(rng.randrange(0, _MERSENNE_P) for _ in range(perms))
        self._token_memo: Dict[int, Tuple[int, ...]] = {}
        self._sketch_memo: Dict[Tuple[int, ...], Tuple[Signature, BandKeys]] = {}

    # -- hashing -------------------------------------------------------------
    def token_hashes(self, token: int) -> Tuple[int, ...]:
        """All ``perms`` lane hashes of one token (memoised)."""
        memo = self._token_memo
        cached = memo.get(token)
        if cached is None:
            if len(memo) >= _CACHE_LIMIT:
                memo.clear()
            p = _MERSENNE_P
            cached = memo[token] = tuple(
                (a * token + b) % p for a, b in zip(self._a, self._b)
            )
        return cached

    def signature(self, record: Union[Record, Iterable[int]]) -> Signature:
        """The MinHash signature of a record (or raw token iterable)."""
        tokens = (
            record.tokens if isinstance(record, Record) else tuple(record)
        )
        return self.sketch(tokens)[0]

    def band_keys(self, signature: Signature) -> BandKeys:
        """One hashable key per band: ``hash`` of the band's row slice."""
        rows = self.rows
        return tuple(
            hash(signature[j * rows:(j + 1) * rows])
            for j in range(self.bands)
        )

    def sketch(self, tokens: Tuple[int, ...]) -> Tuple[Signature, BandKeys]:
        """``(signature, band_keys)`` for a canonical token tuple, memoised
        — the engine/router hot path (one dict hit per repeated record)."""
        if not tokens:
            raise ValueError("cannot sketch an empty token set")
        memo = self._sketch_memo
        cached = memo.get(tokens)
        if cached is None:
            token_hashes = self.token_hashes
            if len(tokens) == 1:
                signature = token_hashes(tokens[0])
            else:
                signature = tuple(
                    map(min, *[token_hashes(token) for token in tokens])
                )
            if len(memo) >= _CACHE_LIMIT:
                memo.clear()
            cached = memo[tokens] = (signature, self.band_keys(signature))
        return cached

    # -- incremental / mergeable updates ------------------------------------
    def extend(self, signature: Signature, token: int) -> Signature:
        """The signature of ``set ∪ {token}`` — O(perms), no re-scan."""
        return tuple(map(min, signature, self.token_hashes(token)))

    def estimate_jaccard(self, sig_a: Signature, sig_b: Signature) -> float:
        """Instance sugar for :func:`estimate_jaccard`."""
        return estimate_jaccard(sig_a, sig_b)

    def describe(self) -> dict:
        return {
            "perms": self.perms,
            "bands": self.bands,
            "rows": self.rows,
            "seed": self.seed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MinHashScheme(perms={self.perms}, bands={self.bands}, "
            f"seed={self.seed})"
        )


def estimate_jaccard(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
    """Unbiased Jaccard estimate: the fraction of agreeing lanes.

    Each lane agrees with probability equal to the true Jaccard
    similarity (the minimum over the union lands in the intersection),
    so the estimator's standard error is ``sqrt(J(1-J)/perms)``.
    """
    if len(sig_a) != len(sig_b):
        raise ValueError(
            f"signature widths differ: {len(sig_a)} vs {len(sig_b)}"
        )
    if not sig_a:
        raise ValueError("cannot compare empty signatures")
    agree = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
    return agree / len(sig_a)


def merge_signatures(sig_a: Signature, sig_b: Signature) -> Signature:
    """The signature of the *union* of the two underlying sets."""
    if len(sig_a) != len(sig_b):
        raise ValueError(
            f"signature widths differ: {len(sig_a)} vs {len(sig_b)}"
        )
    return tuple(map(min, sig_a, sig_b))
