"""Recall/precision measurement between exact and approximate runs.

The differential harness's historical contract is *bit-identical
observables*; the sketch tier deliberately breaks it in one dimension —
the match set — so this module supplies the replacement contract:
measure recall and precision of an approximate run against the exact
run of the same corpus/threshold, and assert precision == 1.0 plus
recall above the analytic bound (:mod:`repro.sketch.analysis`).

Both inputs may be :class:`~repro.parallel.runtime.ParallelJoinResult`
objects, iterables of ``MatchRow`` tuples ``(ts, rid_a, rid_b, overlap,
similarity)``, or pre-built pair sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple, Union

__all__ = ["match_pairs", "observables_recall"]

Pair = Tuple[int, int]


def match_pairs(result) -> FrozenSet[Pair]:
    """The order-independent pair set of a run's matches."""
    if isinstance(result, (set, frozenset)):
        return frozenset(result)
    rows = getattr(result, "matches", result)
    pairs = set()
    for row in rows:
        a, b = row[1], row[2]
        pairs.add((a, b) if a < b else (b, a))
    return frozenset(pairs)


def observables_recall(exact, approx) -> Dict[str, Union[int, float]]:
    """Compare an approximate run's match set against the exact run's.

    Returns counts and the two ratios; an empty reference set means
    there was nothing to miss (recall 1.0), an empty approximate set
    means nothing could be spurious (precision 1.0).
    """
    exact_pairs = match_pairs(exact)
    approx_pairs = match_pairs(approx)
    true_positives = len(exact_pairs & approx_pairs)
    return {
        "exact_pairs": len(exact_pairs),
        "approx_pairs": len(approx_pairs),
        "true_positives": true_positives,
        "missed": len(exact_pairs - approx_pairs),
        "spurious": len(approx_pairs - exact_pairs),
        "recall": (
            true_positives / len(exact_pairs) if exact_pairs else 1.0
        ),
        "precision": (
            true_positives / len(approx_pairs) if approx_pairs else 1.0
        ),
    }
