"""The approximate join engine: LSH band buckets + exact verification.

:class:`SketchStreamingSetJoin` is API-compatible with the columnar
:class:`~repro.core.local_join.StreamingSetJoin` where the parallel
runtime and the simulated cluster touch an engine (``probe`` /
``insert`` / ``probe_and_insert`` / ``*_batch`` / ``batched`` /
``live_postings``), but candidate generation is entirely different:
instead of scanning per-token posting lists, a probe looks up its
``bands`` band keys in per-band bucket dictionaries and scans only the
records that collide in at least one band. Every admitted candidate
still goes through the exact verifier (:func:`verify_pair` plus the
length bounds), so **every emitted match is a true positive — precision
is exactly 1.0 and only recall is approximate** (a true pair is missed
iff no band collides; see :mod:`repro.sketch.analysis`).

Index layout — signature groups of token variants
-------------------------------------------------
Streaming corpora are duplicate-heavy, so the index exploits identity
twice:

* records are grouped by **signature** (:class:`_SigGroup`): each of a
  group's *owned* bands holds one bucket reference to the whole group,
  so a group costs O(owned bands) index entries however many records it
  holds;
* within a group, records are sub-grouped by **token variant**
  (:class:`_Variant`): every member of a variant has the *same* token
  set, so a probe verifies each variant **once** (one merge walk — the
  same diff-based batch-verification idea the bundle engine uses) and
  bulk-emits a match per live member. Probe cost scales with distinct
  collided token sets, not with raw collided records.

Minimal colliding band rule
---------------------------
A probe colliding with a group in several bands must scan it once. With
all bands owned (serial engine) a per-probe seen-set suffices; under a
band filter the scan at band ``j`` proceeds only if no band ``j' < j``
also collides — a pure function of the two band-key vectors, so in a
sharded deployment the one shard owning the *globally* minimal
colliding band reports the pair and every other shard skips it without
communication. The two rules select the same (probe, group) scan set
when one engine owns every band, and exactly-once output needs no
cross-shard state either way.

Windowed expiry
---------------
Entries within a variant are appended in arrival order, so their
timestamps are nondecreasing and lazy expiry is a pure front-advance:
each scan moves the variant's ``start`` cursor past dead entries
(charged as ``posting_expire``, with the standard expiration-lag health
signal) and the consumed front is trimmed once it dominates the
arrays. Eager expiry is not offered — bucket entries are only ever
touched by colliding probes, which is exactly when lazy collection is
free.

Metering
--------
The engine charges the standard operation vocabulary (``index_lookup``
per band bucket consulted, ``posting_scan`` per live entry scanned,
``posting_expire``/``posting_insert`` per (entry × owned band),
``candidate_admit``/``token_compare``/``result_emit`` as in the exact
engine; ``verifications`` counts merge walks, i.e. one per admitted
*variant*) plus two sketch-specific events — ``sketch_band_collisions``
(band-bucket group collisions, pre-dedup) and
``sketch_candidates_admitted`` — that ``repro explain`` and the
frontier bench use to attribute exact-vs-approx throughput gaps. All
counts are pure functions of the per-shard delivery order, so sharded
totals are bit-identical across worker counts for a fixed shard plan.
"""

from __future__ import annotations

from array import array
from contextlib import contextmanager
from itertools import repeat
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.local_join import MatchResult
from repro.core.metering import WorkMeter
from repro.records import Record
from repro.similarity.functions import SimilarityFunction
from repro.similarity.verification import verify_pair
from repro.sketch.minhash import MinHashScheme
from repro.streams.window import SlidingWindow

__all__ = ["SketchStreamingSetJoin", "BandFilter"]

#: ``(band index, band key) -> owned here?`` — the sketch analogue of
#: the prefix scheme's token filter; ``None`` owns every band.
BandFilter = Callable[[int, int], bool]


class _Variant:
    """All indexed records sharing one exact token set, arrival order.

    ``start`` is the front-expiry cursor (timestamps nondecreasing);
    ``size`` caches the token count for the length filter.
    ``selfmatches`` pre-builds the :class:`MatchResult` a probe with
    *these exact tokens* would emit per member — similarity 1.0,
    overlap ``size``, a pure function of the variant — so the
    duplicate-probe hot path is one C-level list extend instead of a
    per-member tuple construction.
    """

    __slots__ = (
        "tokens", "size", "timestamps", "recs", "selfmatches", "start",
    )

    def __init__(self, tokens: Tuple[int, ...]):
        self.tokens = tokens
        self.size = len(tokens)
        self.timestamps = array("d")
        self.recs: List[Record] = []
        self.selfmatches: List[MatchResult] = []
        self.start = 0


class _SigGroup:
    """All indexed records sharing one signature, split by token variant.

    ``owned`` is the tuple of band indices whose buckets reference this
    group at this engine — every member has the same signature, hence
    the same keys and ownership. ``variants`` iterates in first-arrival
    order (dict insertion order), keeping scans deterministic.
    """

    __slots__ = ("keys", "owned", "variants")

    def __init__(self, keys: Tuple[int, ...], owned: Tuple[int, ...]):
        self.keys = keys
        self.owned = owned
        self.variants: Dict[Tuple[int, ...], _Variant] = {}


class SketchStreamingSetJoin:
    """Streaming MinHash/LSH join over one worker's band buckets.

    Parameters
    ----------
    func:
        Similarity function with threshold (verification + length
        bounds — unchanged from the exact engine).
    scheme:
        The :class:`MinHashScheme`; a default one is built if omitted.
    window:
        Sliding window; defaults to unbounded.
    meter:
        Work meter; a fresh unattached one is created if omitted.
    band_filter:
        Restrict the index (and probes) to owned ``(band, key)`` pairs
        — used by the band distribution scheme so each shard hosts its
        share of the band space. ``None`` (serial) owns everything.
    """

    def __init__(
        self,
        func: SimilarityFunction,
        scheme: Optional[MinHashScheme] = None,
        window: Optional[SlidingWindow] = None,
        meter: Optional[WorkMeter] = None,
        band_filter: Optional[BandFilter] = None,
    ):
        self.func = func
        self.scheme = scheme if scheme is not None else MinHashScheme()
        self.window = window if window is not None else SlidingWindow()
        self.meter = meter if meter is not None else WorkMeter()
        self.band_filter = band_filter
        self._bounded = self.window.bounded
        #: Groups are keyed by the *band-key vector*, not the full
        #: signature: two records can only ever collide through their
        #: band keys, so distinct signatures with identical keys belong
        #: in one group (they collide in every band regardless), and a
        #: ``bands``-wide tuple hashes much faster than a ``perms``-wide
        #: one on the insert/probe hot path.
        self._groups: Dict[Tuple[int, ...], _SigGroup] = {}
        #: One bucket dict per band: band key → groups. Unowned bands'
        #: dicts simply stay empty under a band filter.
        self._buckets: List[Dict[int, List[_SigGroup]]] = [
            {} for _ in range(self.scheme.bands)
        ]
        self._bucket_gets = tuple(bucket.get for bucket in self._buckets)
        self._live_postings = 0

    # -- sketch helpers ------------------------------------------------------
    def signature(self, record: Union[Record, Tuple[int, ...]]):
        """Public signature accessor (see :meth:`MinHashScheme.signature`)."""
        return self.scheme.signature(record)

    # -- index maintenance ---------------------------------------------------
    @property
    def live_postings(self) -> int:
        """Live (entry × owned band) references in the bucket index."""
        return self._live_postings

    def insert(self, record: Record) -> None:
        """Index a record under its owned band buckets."""
        meter = self.meter
        tokens = record.tokens
        if not tokens:
            # Key-set parity with the exact engine: an unindexable
            # record still stamps both counters.
            meter.charge("posting_insert", 0)
            meter.event("postings_inserted", 0)
            return
        _sig, keys = self.scheme.sketch(tokens)
        group = self._groups.get(keys)
        if group is None:
            band_filter = self.band_filter
            if band_filter is None:
                owned = tuple(range(self.scheme.bands))
            else:
                owned = tuple(
                    j for j, key in enumerate(keys) if band_filter(j, key)
                )
            group = self._groups[keys] = _SigGroup(keys, owned)
            buckets = self._buckets
            for j in owned:
                bucket = buckets[j]
                groups = bucket.get(keys[j])
                if groups is None:
                    bucket[keys[j]] = [group]
                else:
                    groups.append(group)
        variant = group.variants.get(tokens)
        if variant is None:
            variant = group.variants[tokens] = _Variant(tokens)
        variant.timestamps.append(record.timestamp)
        variant.recs.append(record)
        variant.selfmatches.append(MatchResult(record, 1.0, variant.size))
        inserted = len(group.owned)
        self._live_postings += inserted
        meter.charge("posting_insert", inserted)
        meter.event("postings_inserted", inserted)

    # -- probing ------------------------------------------------------------
    def probe(self, record: Record) -> List[MatchResult]:
        """All colliding, in-window partners with ``sim >= θ``."""
        tokens = record.tokens
        lr = len(tokens)
        if lr == 0:
            return []
        func = self.func
        meter = self.meter
        now = record.timestamp
        bounded = self._bounded
        seconds = self.window.seconds
        _sig, keys = self.scheme.sketch(tokens)
        band_filter = self.band_filter
        results: List[MatchResult] = []
        MR = MatchResult
        new_mr = tuple.__new__
        #: The length bounds and overlap helpers are only needed when a
        #: *non-identical* variant collides — rare on duplicate-heavy
        #: streams — so their method calls are deferred until then.
        have_bounds = False
        lo = hi = 0
        min_overlap = similarity_from_overlap = None
        n_lookup = n_scan = n_expire = n_admit = 0
        n_compare = n_verify = n_emit = n_collide = 0
        #: (probe, group) pairs to scan, selected exactly once each —
        #: see "Minimal colliding band rule" in the module docstring.
        if band_filter is None:
            n_lookup = len(keys)
            # The probe's own group (identical band keys) collides in
            # every band; pulling it out up front keeps the per-band
            # loop to a single identity test in the common case where
            # each bucket holds exactly that group. Only when a bucket
            # holds anything else is a dedup set built (identity hash,
            # so membership stays O(1) however many aliens collide at
            # low-rows settings).
            own = self._groups.get(keys)
            scans = [own] if own is not None else []
            scans_append = scans.append
            seen = None
            for key, bucket_get in zip(keys, self._bucket_gets):
                groups = bucket_get(key)
                if groups is None:
                    continue
                n_collide += len(groups)
                if len(groups) == 1 and groups[0] is own:
                    continue
                if seen is None:
                    seen = set(scans)
                    seen_add = seen.add
                for group in groups:
                    if group not in seen:
                        seen_add(group)
                        scans_append(group)
        else:
            scans = []
            scans_append = scans.append
            buckets = self._buckets
            for j in range(len(buckets)):
                key = keys[j]
                if not band_filter(j, key):
                    continue
                n_lookup += 1
                groups = buckets[j].get(key)
                if not groups:
                    continue
                for group in groups:
                    n_collide += 1
                    gkeys = group.keys
                    minimal = True
                    for jp in range(j):
                        if keys[jp] == gkeys[jp]:
                            minimal = False
                            break
                    if minimal:
                        scans_append(group)

        for group in scans:
            for variant in group.variants.values():
                start = variant.start
                timestamps = variant.timestamps
                n = len(timestamps)
                if bounded and start < n:
                    # Front-advance lazy expiry: in-variant timestamps
                    # are nondecreasing (arrival order), so everything
                    # dead sits at the front.
                    while start < n and now - timestamps[start] > seconds:
                        meter.signal(
                            "window_expiration_lag_fraction",
                            (now - timestamps[start] - seconds) / seconds,
                        )
                        start += 1
                    expired = start - variant.start
                    if expired:
                        owned_width = len(group.owned)
                        n_expire += expired * owned_width
                        self._live_postings -= expired * owned_width
                        if start >= 64 and start * 2 >= n:
                            del variant.timestamps[:start]
                            del variant.recs[:start]
                            del variant.selfmatches[:start]
                            start = 0
                            n = len(timestamps)
                        variant.start = start
                live = n - start
                if not live:
                    continue
                n_scan += live
                vtokens = variant.tokens
                if vtokens == tokens:
                    # Exact duplicates (the streaming common case):
                    # identical sets match at any θ ≤ 1 with overlap lr
                    # and similarity 1.0 — one bulk emit, no merge walk.
                    n_admit += live
                    n_verify += 1
                    n_emit += live
                    sm = variant.selfmatches
                    results += sm if not start else sm[start:]
                    continue
                if not have_bounds:
                    lo, hi = func.length_bounds(lr)
                    min_overlap = func.min_overlap
                    similarity_from_overlap = func.similarity_from_overlap
                    have_bounds = True
                ls = variant.size
                if ls < lo or ls > hi:
                    continue
                n_admit += live
                required = min_overlap(lr, ls)
                # One merge walk verifies the whole variant — every
                # member has exactly these tokens (the bundle engine's
                # batch-verification idea, with an exact batch).
                overlap, comparisons = verify_pair(tokens, vtokens, required)
                n_compare += comparisons
                n_verify += 1
                if overlap >= required:
                    n_emit += live
                    similarity = similarity_from_overlap(lr, ls, overlap)
                    recs = variant.recs
                    seq = recs if not start else recs[start:]
                    results += map(
                        new_mr, repeat(MR),
                        zip(seq, repeat(similarity), repeat(overlap)),
                    )

        charges: Dict[str, float] = {}
        if n_lookup:
            charges["index_lookup"] = n_lookup
        if n_scan:
            charges["posting_scan"] = n_scan
        if n_expire:
            charges["posting_expire"] = n_expire
        if n_admit:
            charges["candidate_admit"] = n_admit
        if n_verify or n_compare:
            charges["token_compare"] = n_compare
        if n_emit:
            charges["result_emit"] = n_emit
        if charges:
            meter.charge_many(charges)
        if n_collide or n_admit or n_verify:
            events: Dict[str, float] = {}
            if n_collide:
                events["sketch_band_collisions"] = n_collide
            if n_admit:
                events["candidates"] = n_admit
                events["sketch_candidates_admitted"] = n_admit
            if n_verify:
                events["verifications"] = n_verify
            meter.event_many(events)
        return results

    # -- combined ------------------------------------------------------------
    def probe_and_insert(self, record: Record) -> List[MatchResult]:
        """Probe first (no self-pair), then index."""
        results = self.probe(record)
        self.insert(record)
        return results

    # -- batched delivery ----------------------------------------------------
    @contextmanager
    def batched(self):
        """Buffer all metering inside the block; flush it once on exit
        (same exactness contract as the columnar engine's ``batched``:
        integer totals, preserved key sets, peak-kept signals)."""
        buffer = WorkMeter()
        real = self.meter
        self.meter = buffer
        try:
            yield
        finally:
            self.meter = real
            if buffer.operations:
                real.charge_many(dict(buffer.operations))
            if buffer.events:
                real.event_many(dict(buffer.events))
            for name, value in buffer.signals.items():
                real.signal(name, value)

    def insert_batch(self, records: List[Record]) -> None:
        """Index every record, flushing the meter once for the batch."""
        with self.batched():
            for record in records:
                self.insert(record)

    def probe_batch(self, records: List[Record]) -> List[List[MatchResult]]:
        """Probe every record (one meter flush); per-record match lists."""
        with self.batched():
            return [self.probe(record) for record in records]
