"""Closed-form banding math: collision probability and recall bounds.

Under the permutation model, two records of Jaccard similarity ``s``
agree on one MinHash lane with probability ``s``, on all ``rows`` lanes
of a band with probability ``s^rows``, and in *at least one* of
``bands`` bands with probability

    P(collide) = 1 - (1 - s^rows)^bands

— the S-curve every LSH scheme trades along. The sketch engine admits a
candidate iff some band collides, then verifies exactly, so per true
pair the probability of being *reported* equals its collision
probability, and expected recall over a workload is the mean collision
probability of its true pairs.

:func:`recall_lower_bound` turns that into a testable one-sided bound:
caught pairs form a Poisson-binomial over per-pair probabilities; a
normal tail bound at ``z`` standard deviations (minus one pair of
absolute slack, covering the universal-hash family's deviation from
true permutations) is loose enough to be deterministic-test safe and
tight enough to be meaningful.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "collision_probability",
    "expected_recall",
    "recall_lower_bound",
]


def collision_probability(similarity: float, rows: int, bands: int) -> float:
    """``1 - (1 - s^rows)^bands`` — P(any band collides) at similarity s."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    if bands < 1:
        raise ValueError(f"bands must be >= 1, got {bands}")
    return 1.0 - (1.0 - similarity ** rows) ** bands


def expected_recall(
    similarities: Sequence[float], rows: int, bands: int
) -> float:
    """Mean collision probability over a workload's true-pair similarities.

    An empty workload has nothing to miss: recall 1.0 by convention
    (matching :func:`repro.sketch.recall.observables_recall`).
    """
    if not similarities:
        return 1.0
    return sum(
        collision_probability(s, rows, bands) for s in similarities
    ) / len(similarities)


def recall_lower_bound(
    similarities: Sequence[float],
    rows: int,
    bands: int,
    z: float = 4.0,
) -> float:
    """A one-sided analytic lower bound on measured recall.

    The number of caught pairs is Poisson-binomial with per-pair
    probabilities ``p_i = collision_probability(s_i, rows, bands)``:
    mean ``Σ p_i``, variance ``Σ p_i (1 - p_i)``. The bound subtracts
    ``z`` standard deviations *and one whole pair* (slack for the
    universal-hash family not being a uniformly random permutation),
    then clamps to [0, 1]. At the default ``z = 4`` a correct engine
    violates this with probability well under 1e-4 per assertion, so
    the differential tests can pin it at a fixed seed.
    """
    n = len(similarities)
    if not n:
        return 0.0
    ps = [collision_probability(s, rows, bands) for s in similarities]
    mean = sum(ps)
    variance = sum(p * (1.0 - p) for p in ps)
    bound = (mean - z * math.sqrt(variance) - 1.0) / n
    return max(0.0, min(1.0, bound))
