"""``repro.sketch`` — the approximate tier (DESIGN §15).

MinHash signatures (:mod:`repro.sketch.minhash`), LSH banding math
(:mod:`repro.sketch.analysis`), the band-bucket join engine
(:mod:`repro.sketch.engine`) and the exact-vs-approx recall harness
(:mod:`repro.sketch.recall`). Routing by band lives with the other
routers in :mod:`repro.routing.band_router`.
"""

from repro.sketch.analysis import (
    collision_probability,
    expected_recall,
    recall_lower_bound,
)
from repro.sketch.engine import SketchStreamingSetJoin
from repro.sketch.minhash import (
    DEFAULT_SEED,
    MinHashScheme,
    estimate_jaccard,
    merge_signatures,
)
from repro.sketch.recall import match_pairs, observables_recall

__all__ = [
    "DEFAULT_SEED",
    "MinHashScheme",
    "SketchStreamingSetJoin",
    "collision_probability",
    "estimate_jaccard",
    "expected_recall",
    "match_pairs",
    "merge_signatures",
    "observables_recall",
    "recall_lower_bound",
]
