"""Record-length statistics feeding the partition planner.

The planner only needs the distribution of record lengths (and a rough
vocabulary size for candidate-selectivity estimates); both are cheap to
collect from a warm-up sample of the stream, which is how the harness
uses this class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


class LengthHistogram:
    """Counts of records per length, with prefix-sum queries.

    >>> h = LengthHistogram.from_lengths([3, 3, 5, 8])
    >>> h.count(3), h.total, h.min_length, h.max_length
    (2, 4, 3, 8)
    >>> h.count_range(3, 5)
    3
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._prefix: List[int] = []
        self._dirty = True

    # -- construction -------------------------------------------------------
    def observe(self, length: int, count: int = 1) -> None:
        """Record ``count`` records of the given length."""
        if length < 1:
            raise ValueError(f"record length must be >= 1, got {length}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._counts[length] = self._counts.get(length, 0) + count
        self._dirty = True

    @classmethod
    def from_lengths(cls, lengths: Iterable[int]) -> "LengthHistogram":
        histogram = cls()
        for length in lengths:
            histogram.observe(length)
        return histogram

    @classmethod
    def from_corpus(cls, corpus: Iterable[Sequence[int]]) -> "LengthHistogram":
        return cls.from_lengths(len(record) for record in corpus)

    # -- queries -----------------------------------------------------------
    @property
    def total(self) -> int:
        """Total records observed."""
        return sum(self._counts.values())

    @property
    def min_length(self) -> int:
        return min(self._counts) if self._counts else 0

    @property
    def max_length(self) -> int:
        return max(self._counts) if self._counts else 0

    def count(self, length: int) -> int:
        return self._counts.get(length, 0)

    def lengths(self) -> List[int]:
        """Observed lengths, ascending."""
        return sorted(self._counts)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of records with length in ``[lo, hi]`` (inclusive)."""
        if hi < lo:
            return 0
        self._ensure_prefix()
        return self._prefix_at(hi) - self._prefix_at(lo - 1)

    def as_dense(self) -> List[int]:
        """Counts for lengths ``1..max_length`` as a dense list
        (index 0 = length 1)."""
        top = self.max_length
        return [self._counts.get(length, 0) for length in range(1, top + 1)]

    # -- internals ----------------------------------------------------------
    def _ensure_prefix(self) -> None:
        if not self._dirty:
            return
        top = self.max_length
        self._prefix = [0] * (top + 1)
        running = 0
        for length in range(1, top + 1):
            running += self._counts.get(length, 0)
            self._prefix[length] = running
        self._dirty = False

    def _prefix_at(self, length: int) -> int:
        if length <= 0 or not self._prefix:
            return 0
        return self._prefix[min(length, len(self._prefix) - 1)]

    def __repr__(self) -> str:
        return (
            f"LengthHistogram(total={self.total}, "
            f"range=[{self.min_length}, {self.max_length}])"
        )
