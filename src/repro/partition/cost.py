"""Local join-cost estimation for candidate length partitions.

The load-aware partitioner needs, for any contiguous length range
``[a, b]``, an estimate of the work the worker owning that range will
perform. Three components are modelled, mirroring what the join bolt
actually does (and charges in the simulator):

index maintenance
    Every record with length in ``[a, b]`` is indexed here under its
    prefix tokens: ``Σ f(l)·g(l)`` postings, where ``g(l)`` is the
    prefix length.

probe fan-in (fixed)
    Every record whose admissible partner-length interval intersects
    ``[a, b]`` sends a probe tuple here; each costs fixed tuple handling.

candidate generation
    A probe of length ``l`` scans postings of records with length in
    ``[a, b] ∩ [lo(l), hi(l)]``. Under a rough independence model, the
    expected postings matched per (probe, indexed) pair is
    ``g(l)·g(l′)/V`` — each of the probe's ``g(l)`` prefix tokens hits
    each of the partner's ``g(l′)`` posted tokens with probability
    ``1/V`` (``V`` = vocabulary size). The model ignores token skew, but
    the histogram term ``f(l)·f(l′)`` — which dominates in practice —
    is exact, and the estimator is only used to *compare* ranges.

All three reduce to prefix-sum queries plus one ``O(range)`` loop, so a
cost query is ``O(max_length)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Tuple

from repro.partition.stats import LengthHistogram
from repro.similarity.functions import SimilarityFunction


class JoinCostEstimator:
    """Estimates per-worker join cost of owning a length range.

    Parameters
    ----------
    histogram:
        Length distribution of (a sample of) the stream.
    func:
        Similarity function; supplies length bounds and prefix lengths.
    vocabulary_size:
        Approximate number of distinct tokens (selectivity scale).
    insert_weight / probe_weight / candidate_weight:
        Relative prices of the three cost components. Defaults follow
        the simulator's cost model: a posting insert ≈ 8 units, probe
        tuple handling ≈ 300 units, admitting + part-verifying one
        candidate ≈ 30 units.
    """

    def __init__(
        self,
        histogram: LengthHistogram,
        func: SimilarityFunction,
        vocabulary_size: int = 10_000,
        insert_weight: float = 8.0,
        probe_weight: float = 300.0,
        candidate_weight: float = 30.0,
    ):
        if histogram.total == 0:
            raise ValueError("cannot estimate costs from an empty histogram")
        if vocabulary_size < 1:
            raise ValueError(f"vocabulary_size must be >= 1, got {vocabulary_size}")
        self.histogram = histogram
        self.func = func
        self.vocabulary_size = vocabulary_size
        self.insert_weight = insert_weight
        self.probe_weight = probe_weight
        self.candidate_weight = candidate_weight

        top = histogram.max_length
        self._top = top
        # Dense per-length arrays, index 0 unused (lengths start at 1).
        self._f = [0] * (top + 1)
        for length in histogram.lengths():
            self._f[length] = histogram.count(length)
        self._g = [0] * (top + 1)
        self._lo = [0] * (top + 1)
        self._hi = [0] * (top + 1)
        for length in range(1, top + 1):
            self._g[length] = func.probe_prefix_length(length)
            lo, hi = func.length_bounds(length)
            self._lo[length] = max(1, lo)
            self._hi[length] = min(top, hi)
        # Prefix sums: F of f, G of f·g.
        self._F = [0.0] * (top + 1)
        self._G = [0.0] * (top + 1)
        for length in range(1, top + 1):
            self._F[length] = self._F[length - 1] + self._f[length]
            self._G[length] = self._G[length - 1] + self._f[length] * self._g[length]
        self._cache: Dict[Tuple[int, int], float] = {}

    # -- public -------------------------------------------------------------
    @property
    def max_length(self) -> int:
        return self._top

    def cost(self, a: int, b: int) -> float:
        """Estimated work of a worker owning lengths ``[a, b]``."""
        if a > b:
            return 0.0
        a = max(1, a)
        b = min(self._top, b)
        if a > b:
            return 0.0
        key = (a, b)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._index_cost(a, b) + self._probe_cost(a, b)
        self._cache[key] = value
        return value

    def total_cost(self) -> float:
        """Cost of a single worker owning everything (the 1-worker run)."""
        return self.cost(1, self._top)

    # -- components ----------------------------------------------------------
    def _index_cost(self, a: int, b: int) -> float:
        return self.insert_weight * (self._G[b] - self._G[a - 1])

    def _probe_sources(self, a: int, b: int) -> Tuple[int, int]:
        """Length range of records whose probes reach partition [a, b].

        A probe of length ``l`` reaches iff ``lo(l) <= b`` and
        ``hi(l) >= a``; both bounds are non-decreasing in ``l``, so the
        qualifying lengths form the contiguous range returned here.
        """
        low = bisect_left(self._hi, a, 1, self._top + 1)
        high = bisect_right(self._lo, b, 1, self._top + 1) - 1
        return low, high

    def _probe_cost(self, a: int, b: int) -> float:
        low, high = self._probe_sources(a, b)
        if low > high:
            return 0.0
        fixed = self.probe_weight * (self._F[high] - self._F[low - 1])
        scale = self.candidate_weight / self.vocabulary_size
        candidates = 0.0
        for length in range(low, high + 1):
            weight = self._f[length] * self._g[length]
            if not weight:
                continue
            span_lo = max(a, self._lo[length])
            span_hi = min(b, self._hi[length])
            if span_lo > span_hi:
                continue
            candidates += weight * (self._G[span_hi] - self._G[span_lo - 1])
        return fixed + scale * candidates
