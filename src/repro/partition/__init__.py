"""Length partitioning: statistics, join-cost estimation and the
load-aware partitioner (the paper's contribution for load balance).

The length-based distribution framework assigns each join worker a
contiguous range of record lengths. Because real corpora have heavily
skewed length distributions, equal-width ranges produce terrible
balance; the paper instead estimates the *local join cost* each length
contributes and chooses boundaries that minimize the maximum per-worker
cost. See :mod:`repro.partition.length_partition`.
"""

from repro.partition.adaptive import (
    AdaptiveLengthPartitioner,
    ReplanDecision,
    RollingLengthHistogram,
    migration_fraction,
)
from repro.partition.cost import JoinCostEstimator
from repro.partition.length_partition import (
    LengthPartition,
    load_aware_partition,
    quantile_partition,
    uniform_partition,
)
from repro.partition.stats import LengthHistogram

__all__ = [
    "AdaptiveLengthPartitioner",
    "JoinCostEstimator",
    "LengthHistogram",
    "LengthPartition",
    "ReplanDecision",
    "RollingLengthHistogram",
    "load_aware_partition",
    "migration_fraction",
    "quantile_partition",
    "uniform_partition",
]
