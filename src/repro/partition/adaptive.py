"""Adaptive length partitioning for drifting streams.

The paper plans its load-aware partition from stream statistics; on a
long-running stream those statistics drift (breaking news changes
document lengths, seasonal query patterns shift), silently degrading a
static plan's balance. This module is the natural extension:

* :class:`RollingLengthHistogram` — an exponentially decayed length
  histogram, so recent records dominate the estimate;
* :class:`AdaptiveLengthPartitioner` — periodically re-estimates the
  current plan's bottleneck under the rolling histogram and replans
  when the projected imbalance exceeds a trigger, reporting the
  estimated *migration cost* (index postings that change owner) so a
  deployment can weigh replan benefit against movement.

Experiment E14 (``benchmarks/test_e14_adaptive_partition.py``) shows a
static plan collapsing under a mid-stream length shift and the adaptive
replan restoring balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.partition.cost import JoinCostEstimator
from repro.partition.length_partition import LengthPartition, load_aware_partition
from repro.partition.stats import LengthHistogram
from repro.similarity.functions import SimilarityFunction


class RollingLengthHistogram:
    """Length histogram with exponential decay (recent records dominate).

    Each observation carries weight ``g^t`` with ``g = 2^(1/half_life)``;
    dividing by the current weight makes older observations decay by
    half every ``half_life`` records. Weights are rescaled before they
    overflow, so the structure runs indefinitely.
    """

    def __init__(self, half_life: int = 2000):
        if half_life < 1:
            raise ValueError(f"half_life must be >= 1, got {half_life}")
        self.half_life = half_life
        self._growth = 2.0 ** (1.0 / half_life)
        self._weights: Dict[int, float] = {}
        self._current = 1.0
        self._observations = 0

    def observe(self, length: int) -> None:
        if length < 1:
            raise ValueError(f"record length must be >= 1, got {length}")
        self._weights[length] = self._weights.get(length, 0.0) + self._current
        self._current *= self._growth
        self._observations += 1
        if self._current > 1e12:
            scale = 1.0 / self._current
            self._weights = {
                l: w * scale for l, w in self._weights.items() if w * scale > 1e-15
            }
            self._current = 1.0

    @property
    def observations(self) -> int:
        """Total records observed (undecayed count)."""
        return self._observations

    def snapshot(self, scale_to: int = 10_000) -> LengthHistogram:
        """A plain histogram of the decayed distribution.

        Weights are normalized and scaled to ``scale_to`` synthetic
        records so the cost estimator sees a realistic magnitude.
        """
        total = sum(self._weights.values())
        histogram = LengthHistogram()
        if total <= 0:
            return histogram
        for length, weight in self._weights.items():
            count = round(weight / total * scale_to)
            if count > 0:
                histogram.observe(length, count)
        return histogram


@dataclass(frozen=True)
class ReplanDecision:
    """What the adaptive partitioner decided at a checkpoint."""

    replanned: bool
    projected_imbalance: float
    partition: LengthPartition
    #: Fraction of (estimated) index postings whose owner changes.
    migration_fraction: float = 0.0


class AdaptiveLengthPartitioner:
    """Drift-aware wrapper around the load-aware planner.

    Feed every record's length to :meth:`observe`; every
    ``check_interval`` records the partitioner projects the *current*
    plan's max/avg cost ratio under the rolling histogram and replans
    when it exceeds ``imbalance_trigger``.
    """

    def __init__(
        self,
        func: SimilarityFunction,
        num_workers: int,
        vocabulary_size: int = 10_000,
        half_life: int = 2000,
        check_interval: int = 1000,
        imbalance_trigger: float = 1.5,
        initial: Optional[LengthPartition] = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        if imbalance_trigger <= 1.0:
            raise ValueError(
                f"imbalance_trigger must exceed 1.0, got {imbalance_trigger}"
            )
        self.func = func
        self.num_workers = num_workers
        self.vocabulary_size = vocabulary_size
        self.check_interval = check_interval
        self.imbalance_trigger = imbalance_trigger
        self.rolling = RollingLengthHistogram(half_life)
        self.partition = initial
        self.replans = 0

    def observe(self, length: int) -> Optional[ReplanDecision]:
        """Track one record; returns a decision at checkpoints."""
        self.rolling.observe(length)
        if self.rolling.observations % self.check_interval:
            return None
        return self.checkpoint()

    def checkpoint(self) -> ReplanDecision:
        """Evaluate drift now; replan if the projection is imbalanced."""
        histogram = self.rolling.snapshot()
        if histogram.total == 0:
            raise ValueError("cannot checkpoint before observing any record")
        estimator = JoinCostEstimator(
            histogram, self.func, vocabulary_size=self.vocabulary_size
        )
        if self.partition is None:
            self.partition = load_aware_partition(estimator, self.num_workers)
            self.replans += 1
            return ReplanDecision(True, 1.0, self.partition)

        projected = self._imbalance(estimator, self.partition)
        if projected <= self.imbalance_trigger:
            return ReplanDecision(False, projected, self.partition)

        new_partition = load_aware_partition(estimator, self.num_workers)
        migration = migration_fraction(
            self.partition, new_partition, histogram, self.func
        )
        self.partition = new_partition
        self.replans += 1
        return ReplanDecision(True, projected, new_partition, migration)

    def _imbalance(
        self, estimator: JoinCostEstimator, partition: LengthPartition
    ) -> float:
        """Projected max/avg worker cost of a plan under the histogram.

        Lengths outside the plan's span clamp to the edge workers
        (:meth:`LengthPartition.owner_of`), so the first/last ranges are
        widened to the estimator's domain before costing — this is
        exactly how drift overloads an edge worker.
        """
        last = len(partition.ranges) - 1
        costs = []
        for index, (lo, hi) in enumerate(partition.ranges):
            effective_lo = 1 if index == 0 else lo
            effective_hi = estimator.max_length if index == last else hi
            costs.append(estimator.cost(effective_lo, effective_hi))
        average = sum(costs) / len(costs)
        return max(costs) / average if average > 0 else 1.0


def migration_fraction(
    old: LengthPartition,
    new: LengthPartition,
    histogram: LengthHistogram,
    func: SimilarityFunction,
) -> float:
    """Estimated fraction of live index postings that change owner.

    A record's postings live at its length's owner; postings move when
    the two plans assign the length to different workers. Weighted by
    per-record prefix length (the posting count).
    """
    moved = 0.0
    total = 0.0
    for length in histogram.lengths():
        weight = histogram.count(length) * func.index_prefix_length(length)
        total += weight
        if old.owner_of(length) != new.owner_of(length):
            moved += weight
    return moved / total if total > 0 else 0.0
