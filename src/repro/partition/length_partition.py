"""Length partition plans and the algorithms that produce them.

Three planners, in ascending sophistication (E5/E6 compare them):

* :func:`uniform_partition` — equal-width length ranges. The strawman:
  skewed corpora concentrate almost all records in a few ranges.
* :func:`quantile_partition` — equal *record counts* per range. Better,
  but join cost is quadratic-ish in local density, and probe fan-in
  ignores it entirely.
* :func:`load_aware_partition` — the paper's method: minimize the
  maximum estimated per-worker join cost (index + probe fan-in +
  candidate generation) via binary search on the cost budget with a
  greedy feasibility check, exploiting that the cost of a range is
  monotone in its right endpoint. :func:`optimal_partition_dp` is the
  exact dynamic program used by the tests to certify optimality of the
  binary-search result on small domains.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.partition.cost import JoinCostEstimator
from repro.partition.stats import LengthHistogram

#: Relative tolerance of the budget binary search.
_BUDGET_TOLERANCE = 1e-6


@dataclass(frozen=True)
class LengthPartition:
    """A contiguous partition of the record-length domain.

    ``ranges[i] = (lo, hi)`` is the inclusive length range owned by
    worker ``i``. Ranges are contiguous, disjoint and ascending; they
    cover ``[ranges[0][0], ranges[-1][1]]``. Lengths outside that span
    clamp to the first/last worker, so every possible record has an
    owner.
    """

    ranges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("partition needs at least one range")
        previous_hi: Optional[int] = None
        for lo, hi in self.ranges:
            if lo > hi:
                raise ValueError(f"empty range ({lo}, {hi}) in partition")
            if previous_hi is not None and lo != previous_hi + 1:
                raise ValueError(
                    f"ranges must be contiguous; got gap/overlap at ({lo}, {hi})"
                )
            previous_hi = hi
        # Precompute the upper bounds for owner lookups.
        object.__setattr__(self, "_uppers", [hi for _, hi in self.ranges])

    @property
    def num_workers(self) -> int:
        return len(self.ranges)

    def owner_of(self, length: int) -> int:
        """Worker owning records of ``length`` (clamped at the edges)."""
        index = bisect_left(self._uppers, length)  # type: ignore[attr-defined]
        return min(index, len(self.ranges) - 1)

    def owners_of_range(self, lo: int, hi: int) -> Tuple[int, ...]:
        """Workers whose ranges intersect ``[lo, hi]`` (ascending)."""
        if hi < lo:
            return ()
        first = self.owner_of(lo)
        last = self.owner_of(hi)
        return tuple(range(first, last + 1))

    def describe(self) -> str:
        parts = ", ".join(f"w{i}:[{lo},{hi}]" for i, (lo, hi) in enumerate(self.ranges))
        return f"LengthPartition({parts})"


def uniform_partition(min_length: int, max_length: int, k: int) -> LengthPartition:
    """Split ``[min_length, max_length]`` into ``k`` equal-width ranges.

    If the domain has fewer than ``k`` lengths, fewer ranges are
    returned (workers beyond them would own nothing).
    """
    _check_domain(min_length, max_length, k)
    span = max_length - min_length + 1
    k = min(k, span)
    ranges: List[Tuple[int, int]] = []
    for i in range(k):
        lo = min_length + (span * i) // k
        hi = min_length + (span * (i + 1)) // k - 1
        ranges.append((lo, hi))
    return LengthPartition(tuple(ranges))


def quantile_partition(histogram: LengthHistogram, k: int) -> LengthPartition:
    """Ranges holding (approximately) equal numbers of records."""
    _check_domain(histogram.min_length, histogram.max_length, k)
    lengths = histogram.lengths()
    total = histogram.total
    ranges: List[Tuple[int, int]] = []
    start = histogram.min_length
    consumed = 0
    remaining_parts = k
    running = 0
    for length in lengths:
        running += histogram.count(length)
        target = (total - consumed) / remaining_parts
        if running >= target and remaining_parts > 1 and length < histogram.max_length:
            ranges.append((start, length))
            start = length + 1
            consumed += running
            running = 0
            remaining_parts -= 1
    ranges.append((start, histogram.max_length))
    return LengthPartition(tuple(ranges))


def load_aware_partition(
    estimator: JoinCostEstimator, k: int
) -> LengthPartition:
    """Minimize the maximum per-worker estimated join cost.

    Binary-searches the smallest budget ``B`` for which a greedy
    left-to-right packing covers the domain with at most ``k`` ranges
    (valid because ``cost(a, ·)`` is non-decreasing), then splits the
    most expensive ranges until exactly ``min(k, domain)`` ranges exist
    so no worker idles.
    """
    top = estimator.max_length
    _check_domain(1, top, k)
    k = min(k, top)

    low = max(estimator.cost(length, length) for length in range(1, top + 1))
    high = estimator.total_cost()
    if low <= 0:
        low = min(high, 1e-12)

    def pack(budget: float) -> Optional[List[Tuple[int, int]]]:
        ranges: List[Tuple[int, int]] = []
        start = 1
        while start <= top:
            if len(ranges) == k:
                return None
            end = _largest_end(estimator, start, budget, top)
            if end is None:
                return None
            ranges.append((start, end))
            start = end + 1
        return ranges

    best = pack(high)
    assert best is not None, "the full domain must fit the total-cost budget"
    while high - low > _BUDGET_TOLERANCE * max(high, 1.0):
        mid = (low + high) / 2.0
        attempt = pack(mid)
        if attempt is None:
            low = mid
        else:
            best, high = attempt, mid

    ranges = _split_to_k(estimator, best, k)
    return LengthPartition(tuple(ranges))


def optimal_partition_dp(estimator: JoinCostEstimator, k: int) -> float:
    """Exact minimal max-cost via dynamic programming (test oracle).

    ``O(k · L²)`` cost queries — use on small domains only. Returns the
    optimal bottleneck cost (not the partition) for comparison with
    :func:`load_aware_partition`.
    """
    top = estimator.max_length
    _check_domain(1, top, k)
    k = min(k, top)
    infinity = float("inf")
    # best[j][b] = minimal max cost covering lengths 1..b with j ranges.
    previous = [infinity] * (top + 1)
    for b in range(1, top + 1):
        previous[b] = estimator.cost(1, b)
    for _ in range(2, k + 1):
        current = [infinity] * (top + 1)
        for b in range(1, top + 1):
            best = previous[b]  # unused extra range is never worse
            for m in range(1, b):
                candidate = max(previous[m], estimator.cost(m + 1, b))
                if candidate < best:
                    best = candidate
            current[b] = best
        previous = current
    return previous[top]


# -- helpers ------------------------------------------------------------------
def _check_domain(min_length: int, max_length: int, k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if max_length < min_length or min_length < 1:
        raise ValueError(
            f"invalid length domain [{min_length}, {max_length}]"
        )


def _largest_end(
    estimator: JoinCostEstimator, start: int, budget: float, top: int
) -> Optional[int]:
    """Largest ``end`` with ``cost(start, end) <= budget`` (monotone)."""
    if estimator.cost(start, start) > budget:
        return None
    lo, hi = start, top
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if estimator.cost(start, mid) <= budget:
            lo = mid
        else:
            hi = mid - 1
    return lo


def _split_to_k(
    estimator: JoinCostEstimator, ranges: List[Tuple[int, int]], k: int
) -> List[Tuple[int, int]]:
    """Split the costliest multi-length ranges until ``k`` ranges exist.

    Splitting a range never increases the bottleneck (each half costs at
    most the whole), so this only improves balance while guaranteeing
    every worker owns a range.
    """
    ranges = list(ranges)
    while len(ranges) < k:
        candidates = [
            (estimator.cost(lo, hi), i)
            for i, (lo, hi) in enumerate(ranges)
            if hi > lo
        ]
        if not candidates:
            break
        _, index = max(candidates)
        lo, hi = ranges[index]
        split = _best_split(estimator, lo, hi)
        ranges[index : index + 1] = [(lo, split), (split + 1, hi)]
    return ranges


def _best_split(estimator: JoinCostEstimator, lo: int, hi: int) -> int:
    """Internal split point minimizing max(cost(lo, m), cost(m+1, hi)).

    ``cost(lo, m)`` is non-decreasing and ``cost(m+1, hi)`` is
    non-increasing in ``m``, so the minimum sits at their crossover.
    """
    best_m, best_value = lo, float("inf")
    left, right = lo, hi - 1
    while left <= right:
        mid = (left + right) // 2
        head = estimator.cost(lo, mid)
        tail = estimator.cost(mid + 1, hi)
        value = max(head, tail)
        if value < best_value:
            best_value, best_m = value, mid
        if head < tail:
            left = mid + 1
        else:
            right = mid - 1
    return best_m
