"""Verification primitives: exact overlap with early termination.

Verification dominates join cost once filtering is effective, so the
paper's batch-verification contribution (see
:mod:`repro.core.verify`) is all about sharing this work. The
primitives here therefore report *how much work they did* — the number
of token comparisons performed — so that the cost model of the Storm
simulator and experiment E8 can account for it exactly.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def overlap_count(r: Sequence[int], s: Sequence[int]) -> int:
    """Exact intersection size of two canonical (sorted) token arrays."""
    i = j = o = 0
    lr, ls = len(r), len(s)
    while i < lr and j < ls:
        if r[i] == s[j]:
            o += 1
            i += 1
            j += 1
        elif r[i] < s[j]:
            i += 1
        else:
            j += 1
    return o


def verify_pair(
    r: Sequence[int],
    s: Sequence[int],
    required: int,
    start_r: int = 0,
    start_s: int = 0,
    known: int = 0,
) -> Tuple[int, int]:
    """Merge-verify whether ``|r ∩ s| >= required``, stopping early.

    Scans the suffixes ``r[start_r:]`` and ``s[start_s:]`` assuming
    ``known`` matches were already established before those positions
    (the prefix-overlap accumulated during candidate generation). After
    every step the remaining upper bound is checked; the scan aborts as
    soon as ``required`` is unreachable.

    Returns
    -------
    (overlap, comparisons):
        ``overlap`` is the exact intersection size if it is
        ``>= required``, otherwise ``-1`` (early-terminated scans do not
        produce an exact count). ``comparisons`` is the number of token
        comparison steps executed — the cost-model currency.
    """
    i, j, o = start_r, start_s, known
    lr, ls = len(r), len(s)
    comparisons = 0
    while i < lr and j < ls:
        # Remaining potential: matches so far + everything left in the
        # shorter remainder.
        if o + min(lr - i, ls - j) < required:
            return -1, comparisons
        comparisons += 1
        if r[i] == s[j]:
            o += 1
            i += 1
            j += 1
        elif r[i] < s[j]:
            i += 1
        else:
            j += 1
    return (o, comparisons) if o >= required else (-1, comparisons)
