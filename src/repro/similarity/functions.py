"""Similarity functions over token sets and their exact pruning bounds.

Each similarity function exposes the three pieces of derived math that
set-similarity join algorithms need:

``min_overlap(lr, ls)``
    The smallest intersection size ``o`` such that two sets of sizes
    ``lr`` and ``ls`` with ``|r ∩ s| = o`` can satisfy ``sim(r, s) >= θ``.

``length_bounds(lr)``
    The closed interval ``[lmin, lmax]`` of partner sizes that can
    possibly reach the threshold against a set of size ``lr`` (the
    *length filter*).

``probe_prefix_length(lr)`` / ``index_prefix_length(lr)``
    Prefix-filter lengths. If ``sim(r, s) >= θ`` then the first
    ``probe_prefix_length(|r|)`` tokens of ``r`` (in the global order)
    and the first ``index_prefix_length(|s|)`` tokens of ``s`` share at
    least one token, so an inverted index over index prefixes finds
    every qualifying pair.

In the *streaming* setting records arrive in arbitrary order and either
side of a pair may probe, so the safe index prefix equals the probe
prefix (both are derived from the shortest admissible partner). The
offline optimization of shorter index prefixes — valid only when records
are processed in non-decreasing length order — is intentionally not
used; see DESIGN.md §7 invariant 1.

All bounds are exact in the sense tested by
``tests/test_similarity_functions.py``: they never prune a qualifying
pair, and each bound is tight for some pair.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Sequence, Tuple, Type

#: Guard against float rounding in threshold arithmetic. 1e-9 is far
#: below the resolution of any meaningful threshold (thresholds are
#: user-supplied constants like 0.8) and far above double rounding error
#: for the set sizes this library handles (< 1e7 tokens).
EPS = 1e-9


def _ceil(x: float) -> int:
    """Ceiling that forgives float error just below an integer."""
    return int(math.ceil(x - EPS))


def _floor(x: float) -> int:
    """Floor that forgives float error just above an integer."""
    return int(math.floor(x + EPS))


class SimilarityFunction:
    """A normalized set-similarity function with its pruning bounds.

    Parameters
    ----------
    threshold:
        The join threshold ``θ``. For the normalized functions
        (Jaccard, Cosine, Dice) it must lie in ``(0, 1]``; for
        :class:`Overlap` it is an absolute intersection size ``>= 1``.
    """

    #: Registry name, e.g. ``"jaccard"``. Set by subclasses.
    name: str = ""

    def __init__(self, threshold: float):
        self._check_threshold(threshold)
        self.threshold = float(threshold)
        # Per-instance memo tables over the pure size-derived bounds.
        # The join engines call these once per posting/probe and record
        # sizes repeat heavily, so each instance shadows its (subclass)
        # methods with an unbounded cache; the table size is bounded by
        # the number of distinct record lengths (length pairs for
        # ``min_overlap``, size/size/overlap triples for
        # ``similarity_from_overlap`` — the length filter keeps the
        # sizes close and the overlap near the threshold, so the
        # triples stay sparse), a few thousand entries at most.
        self.min_overlap = lru_cache(maxsize=None)(self.min_overlap)
        self.length_bounds = lru_cache(maxsize=None)(self.length_bounds)
        self.probe_prefix_length = lru_cache(maxsize=None)(self.probe_prefix_length)
        self.index_prefix_length = lru_cache(maxsize=None)(self.index_prefix_length)
        self.similarity_from_overlap = lru_cache(maxsize=None)(
            self.similarity_from_overlap
        )

    # -- to be provided by subclasses ------------------------------------
    def similarity(self, r: Sequence[int], s: Sequence[int]) -> float:
        """Exact similarity of two canonical token arrays."""
        raise NotImplementedError

    def similarity_from_overlap(self, lr: int, ls: int, o: int) -> float:
        """Similarity value implied by sizes ``lr, ls`` and overlap ``o``."""
        raise NotImplementedError

    def min_overlap(self, lr: int, ls: int) -> int:
        """Smallest overlap that lets sizes ``lr, ls`` reach the threshold."""
        raise NotImplementedError

    def length_bounds(self, lr: int) -> Tuple[int, int]:
        """Partner-size interval ``[lmin, lmax]`` admissible for size ``lr``."""
        raise NotImplementedError

    # -- shared derivations ----------------------------------------------
    def probe_prefix_length(self, lr: int) -> int:
        """Prefix length of a probing record of size ``lr``.

        Derived from the loosest admissible partner: the minimum of
        ``min_overlap(lr, ls)`` over all admissible ``ls`` is attained
        at ``ls = lmin`` for every function implemented here (each
        ``min_overlap`` is non-decreasing in ``ls``).
        """
        if lr <= 0:
            return 0
        lmin, _ = self.length_bounds(lr)
        lmin = max(lmin, 1)
        t = self.min_overlap(lr, lmin)
        return max(0, min(lr, lr - t + 1))

    def index_prefix_length(self, lr: int) -> int:
        """Prefix length under which a record of size ``lr`` is indexed.

        Equal to the probe prefix in the streaming setting (arbitrary
        arrival order — see module docstring).
        """
        return self.probe_prefix_length(lr)

    def matches(self, r: Sequence[int], s: Sequence[int]) -> bool:
        """Whether ``sim(r, s) >= threshold`` (exact, no filtering)."""
        return self.similarity(r, s) >= self.threshold - EPS

    # -- plumbing ----------------------------------------------------------
    def _check_threshold(self, threshold: float) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"{type(self).__name__} threshold must be in (0, 1], "
                f"got {threshold!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(threshold={self.threshold})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SimilarityFunction)
            and type(self) is type(other)
            and self.threshold == other.threshold
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.threshold))


def _overlap(r: Sequence[int], s: Sequence[int]) -> int:
    """Intersection size of two sorted token arrays (linear merge)."""
    i = j = o = 0
    lr, ls = len(r), len(s)
    while i < lr and j < ls:
        if r[i] == s[j]:
            o += 1
            i += 1
            j += 1
        elif r[i] < s[j]:
            i += 1
        else:
            j += 1
    return o


class Jaccard(SimilarityFunction):
    """Jaccard similarity ``|r ∩ s| / |r ∪ s|``."""

    name = "jaccard"

    def similarity(self, r: Sequence[int], s: Sequence[int]) -> float:
        if not r and not s:
            return 1.0
        o = _overlap(r, s)
        return o / (len(r) + len(s) - o)

    def similarity_from_overlap(self, lr: int, ls: int, o: int) -> float:
        union = lr + ls - o
        return 1.0 if union == 0 else o / union

    def min_overlap(self, lr: int, ls: int) -> int:
        # o / (lr + ls - o) >= θ  ⟺  o >= θ (lr + ls) / (1 + θ)
        t = self.threshold
        return _ceil(t / (1.0 + t) * (lr + ls))

    def length_bounds(self, lr: int) -> Tuple[int, int]:
        t = self.threshold
        return _ceil(t * lr), _floor(lr / t)


class Cosine(SimilarityFunction):
    """Cosine similarity over sets ``|r ∩ s| / sqrt(|r| |s|)``."""

    name = "cosine"

    def similarity(self, r: Sequence[int], s: Sequence[int]) -> float:
        if not r and not s:
            return 1.0
        if not r or not s:
            return 0.0
        return _overlap(r, s) / math.sqrt(len(r) * len(s))

    def similarity_from_overlap(self, lr: int, ls: int, o: int) -> float:
        if lr == 0 and ls == 0:
            return 1.0
        if lr == 0 or ls == 0:
            return 0.0
        return o / math.sqrt(lr * ls)

    def min_overlap(self, lr: int, ls: int) -> int:
        return _ceil(self.threshold * math.sqrt(lr * ls))

    def length_bounds(self, lr: int) -> Tuple[int, int]:
        t2 = self.threshold * self.threshold
        return _ceil(t2 * lr), _floor(lr / t2)


class Dice(SimilarityFunction):
    """Dice similarity ``2 |r ∩ s| / (|r| + |s|)``."""

    name = "dice"

    def similarity(self, r: Sequence[int], s: Sequence[int]) -> float:
        if not r and not s:
            return 1.0
        return 2.0 * _overlap(r, s) / (len(r) + len(s))

    def similarity_from_overlap(self, lr: int, ls: int, o: int) -> float:
        total = lr + ls
        return 1.0 if total == 0 else 2.0 * o / total

    def min_overlap(self, lr: int, ls: int) -> int:
        return _ceil(self.threshold * (lr + ls) / 2.0)

    def length_bounds(self, lr: int) -> Tuple[int, int]:
        t = self.threshold
        return _ceil(t / (2.0 - t) * lr), _floor((2.0 - t) / t * lr)


class Overlap(SimilarityFunction):
    """Absolute overlap ``|r ∩ s|``; the threshold is an integer count."""

    name = "overlap"

    def _check_threshold(self, threshold: float) -> None:
        if threshold < 1 or threshold != int(threshold):
            raise ValueError(
                f"Overlap threshold must be a positive integer, got {threshold!r}"
            )

    def similarity(self, r: Sequence[int], s: Sequence[int]) -> float:
        return float(_overlap(r, s))

    def similarity_from_overlap(self, lr: int, ls: int, o: int) -> float:
        return float(o)

    def min_overlap(self, lr: int, ls: int) -> int:
        return int(self.threshold)

    def length_bounds(self, lr: int) -> Tuple[int, int]:
        # A partner must contain at least θ tokens; no upper bound.
        return int(self.threshold), 2**31 - 1


_REGISTRY: Dict[str, Type[SimilarityFunction]] = {
    cls.name: cls for cls in (Jaccard, Cosine, Dice, Overlap)
}


def get_similarity(name: str, threshold: float) -> SimilarityFunction:
    """Instantiate a similarity function from its registry name.

    >>> get_similarity("jaccard", 0.8).min_overlap(10, 10)
    9
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown similarity function {name!r}; known: {known}")
    return cls(threshold)
