"""Set-similarity toolkit: similarity functions, filter bounds, token
ordering, tokenizers and verification primitives.

This subpackage is the algorithmic substrate of the reproduction. All
join algorithms in :mod:`repro.core` and all distribution schemes in
:mod:`repro.routing` are built on the exact pruning bounds defined here.

Records are represented as *canonical token arrays*: tuples of integer
token ids sorted ascending by a fixed global order (see
:class:`~repro.similarity.ordering.TokenDictionary`). Every function in
this subpackage assumes that representation.
"""

from repro.similarity.functions import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    SimilarityFunction,
    get_similarity,
)
from repro.similarity.filters import (
    index_prefix_length,
    length_bounds,
    min_overlap,
    position_upper_bound,
    probe_prefix_length,
)
from repro.similarity.ordering import TokenDictionary
from repro.similarity.tokenizers import QGramTokenizer, WordTokenizer
from repro.similarity.verification import overlap_count, verify_pair

__all__ = [
    "Cosine",
    "Dice",
    "Jaccard",
    "Overlap",
    "QGramTokenizer",
    "SimilarityFunction",
    "TokenDictionary",
    "WordTokenizer",
    "get_similarity",
    "index_prefix_length",
    "length_bounds",
    "min_overlap",
    "overlap_count",
    "position_upper_bound",
    "probe_prefix_length",
    "verify_pair",
]
