"""Tokenizers turning raw text into token sequences.

Two families cover the workloads in the paper's domain:

* :class:`WordTokenizer` — whitespace/word tokens (queries, titles,
  tweets, mail bodies).
* :class:`QGramTokenizer` — character q-grams (short strings where word
  boundaries carry little signal).

Tokenizers return *lists* (order and duplicates preserved);
:meth:`repro.similarity.ordering.TokenDictionary.canonicalize` applies
set semantics afterwards. :func:`multiset` converts duplicate-bearing
token lists into set-compatible tokens by suffixing occurrence numbers,
the standard reduction of multiset similarity to set similarity.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Hashable, List, Sequence, Tuple

_WORD_RE = re.compile(r"[a-z0-9]+", re.IGNORECASE)


class WordTokenizer:
    """Split text into lowercase alphanumeric word tokens.

    >>> WordTokenizer()("Storm: a STREAM engine!")
    ['storm', 'a', 'stream', 'engine']
    """

    def __init__(self, lowercase: bool = True, min_length: int = 1):
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.lowercase = lowercase
        self.min_length = min_length

    def __call__(self, text: str) -> List[str]:
        if self.lowercase:
            text = text.lower()
        return [t for t in _WORD_RE.findall(text) if len(t) >= self.min_length]


class QGramTokenizer:
    """Character q-grams, optionally padded at both ends.

    >>> QGramTokenizer(q=2, pad=False)("abc")
    ['ab', 'bc']
    >>> QGramTokenizer(q=2, pad=True, pad_char="#")("ab")
    ['#a', 'ab', 'b#']
    """

    def __init__(self, q: int = 3, pad: bool = True, pad_char: str = "\x00"):
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        if len(pad_char) != 1:
            raise ValueError("pad_char must be a single character")
        self.q = q
        self.pad = pad
        self.pad_char = pad_char

    def __call__(self, text: str) -> List[str]:
        if self.pad and self.q > 1:
            padding = self.pad_char * (self.q - 1)
            text = f"{padding}{text}{padding}"
        if len(text) < self.q:
            return [text] if text else []
        return [text[i : i + self.q] for i in range(len(text) - self.q + 1)]


def multiset(tokens: Sequence[Hashable]) -> List[Tuple[Hashable, int]]:
    """Disambiguate duplicates so set similarity models bag similarity.

    The *i*-th occurrence of token ``t`` becomes the pair ``(t, i)``; two
    bags then share ``min(count_r(t), count_s(t))`` copies of ``t`` —
    exactly the multiset intersection.

    >>> multiset(["a", "b", "a"])
    [('a', 0), ('b', 0), ('a', 1)]
    """
    seen: Counter = Counter()
    result: List[Tuple[Hashable, int]] = []
    for token in tokens:
        result.append((token, seen[token]))
        seen[token] += 1
    return result
