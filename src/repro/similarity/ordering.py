"""Global token ordering: the dictionary that canonicalizes records.

Prefix filtering requires every record's tokens to be sorted by one
*fixed global total order*. Correctness holds for any consistent order;
*effectiveness* is best when rare tokens sort first, because then the
short prefixes carry the most selective tokens (classic document-
frequency-ascending ordering).

:class:`TokenDictionary` supports both regimes:

* **dynamic** — tokens get ids on first encounter (insertion order).
  Always consistent, hence always correct; used when no corpus pass is
  possible.
* **frequency-ranked** — after observing a corpus (or a warm-up sample),
  :meth:`rank_by_frequency` reassigns ids so ascending id order equals
  ascending frequency (ties broken by the token itself for determinism).
  Tokens first seen *after* ranking receive fresh ids above all ranked
  ids; they sort last, i.e. they are treated as frequent. That choice
  only affects pruning power, never correctness.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Tuple


class TokenDictionary:
    """Bidirectional token ↔ id mapping defining the global token order.

    Examples
    --------
    >>> d = TokenDictionary()
    >>> d.canonicalize(["news", "data", "news", "join"])  # set semantics
    (0, 1, 2)
    >>> d.token_of(0)
    'news'
    """

    def __init__(self) -> None:
        self._id_of: Dict[Hashable, int] = {}
        self._token_of: List[Hashable] = []
        self._frequency: Counter = Counter()
        self._ranked = False

    # -- core mapping ------------------------------------------------------
    def id_of(self, token: Hashable) -> int:
        """Id of ``token``, assigning a fresh one on first encounter."""
        existing = self._id_of.get(token)
        if existing is not None:
            return existing
        new_id = len(self._token_of)
        self._id_of[token] = new_id
        self._token_of.append(token)
        return new_id

    def token_of(self, token_id: int) -> Hashable:
        """Inverse lookup; raises ``IndexError`` for unknown ids."""
        return self._token_of[token_id]

    def __len__(self) -> int:
        return len(self._token_of)

    def __contains__(self, token: Hashable) -> bool:
        return token in self._id_of

    @property
    def is_ranked(self) -> bool:
        """Whether ids currently reflect ascending global frequency."""
        return self._ranked

    # -- canonical records ---------------------------------------------------
    def canonicalize(self, tokens: Iterable[Hashable]) -> Tuple[int, ...]:
        """Map raw tokens to a sorted, duplicate-free id tuple.

        Duplicates are dropped (set semantics — the paper's model). Use
        :func:`repro.similarity.tokenizers.multiset` upstream if bag
        semantics are needed.
        """
        ids = {self.id_of(token) for token in tokens}
        return tuple(sorted(ids))

    def decode(self, record: Iterable[int]) -> List[Hashable]:
        """Map a canonical id tuple back to raw tokens."""
        return [self._token_of[token_id] for token_id in record]

    # -- frequency ranking -----------------------------------------------
    def observe(self, tokens: Iterable[Hashable]) -> None:
        """Accumulate frequency statistics from one raw record."""
        self._frequency.update(set(tokens))

    def rank_by_frequency(self) -> None:
        """Reassign ids so ascending id = ascending observed frequency.

        Invalidates any canonical records produced before the call;
        callers (the bench harness, the dataset builders) rank once,
        before canonicalizing anything.
        """
        ordered = sorted(
            self._id_of,
            key=lambda token: (self._frequency.get(token, 0), repr(token)),
        )
        self._id_of = {token: rank for rank, token in enumerate(ordered)}
        self._token_of = ordered
        self._ranked = True

    @classmethod
    def from_corpus(cls, corpus: Iterable[Iterable[Hashable]]) -> "TokenDictionary":
        """Build a frequency-ranked dictionary from raw token records."""
        dictionary = cls()
        materialized = [list(record) for record in corpus]
        for record in materialized:
            dictionary.observe(record)
            for token in record:
                dictionary.id_of(token)
        dictionary.rank_by_frequency()
        return dictionary
