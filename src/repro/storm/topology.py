"""Topology declaration: components, parallelism and stream groupings.

The builder mirrors Storm's ``TopologyBuilder``::

    builder = TopologyBuilder()
    builder.set_spout("source", spout)
    builder.set_bolt("dispatch", make_dispatcher, parallelism=1) \\
           .shuffle_grouping("source")
    builder.set_bolt("join", make_join_bolt, parallelism=8) \\
           .direct_grouping("dispatch", stream="index") \\
           .direct_grouping("dispatch", stream="probe")
    builder.set_bolt("sink", make_sink).global_grouping("join", "results")
    topology = builder.build()

Groupings decide which task(s) of a subscribing bolt receive each tuple:

* ``shuffle`` — deterministic round-robin per producing task;
* ``fields(i, …)`` — hash of the selected value positions;
* ``all`` — every task (broadcast);
* ``global`` — task 0;
* ``direct`` — the task index chosen by the producer at emit time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.storm.components import Bolt, Spout

BoltFactory = Callable[[int], Bolt]


class Grouping:
    """Strategy mapping one emitted tuple to destination task indices."""

    kind = "abstract"

    def targets(
        self,
        values: Tuple[Any, ...],
        source_task: int,
        num_tasks: int,
        direct_task: Optional[int],
        sequence: int,
    ) -> Sequence[int]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ShuffleGrouping(Grouping):
    """Deterministic round-robin over destination tasks."""

    kind = "shuffle"

    def targets(self, values, source_task, num_tasks, direct_task, sequence):
        return (sequence % num_tasks,)


class FieldsGrouping(Grouping):
    """Hash-partition by the values at the given tuple positions."""

    kind = "fields"

    def __init__(self, *positions: int):
        if not positions:
            raise ValueError("fields grouping needs at least one position")
        self.positions = positions

    def targets(self, values, source_task, num_tasks, direct_task, sequence):
        key = tuple(values[p] for p in self.positions)
        # hash() is salted for str; use a stable FNV-1a over repr for
        # run-to-run determinism.
        h = 2166136261
        for ch in repr(key).encode():
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        return (h % num_tasks,)


class AllGrouping(Grouping):
    """Broadcast to every task of the subscriber."""

    kind = "all"

    def targets(self, values, source_task, num_tasks, direct_task, sequence):
        return tuple(range(num_tasks))


class GlobalGrouping(Grouping):
    """Everything to task 0."""

    kind = "global"

    def targets(self, values, source_task, num_tasks, direct_task, sequence):
        return (0,)


class DirectGrouping(Grouping):
    """The producer names the destination task at emit time."""

    kind = "direct"

    def targets(self, values, source_task, num_tasks, direct_task, sequence):
        if direct_task is None:
            raise ValueError("direct-grouped stream requires direct_task at emit")
        if not 0 <= direct_task < num_tasks:
            raise ValueError(
                f"direct_task {direct_task} out of range for {num_tasks} tasks"
            )
        return (direct_task,)


@dataclass(frozen=True)
class Subscription:
    """One edge of the topology: (source, stream) consumed by a bolt."""

    source: str
    stream: str
    destination: str
    grouping: Grouping


class BoltDeclarer:
    """Fluent grouping declarations for one bolt (Storm-style)."""

    def __init__(self, builder: "TopologyBuilder", name: str):
        self._builder = builder
        self._name = name

    def _subscribe(self, source: str, stream: str, grouping: Grouping) -> "BoltDeclarer":
        self._builder._subscriptions.append(
            Subscription(source, stream, self._name, grouping)
        )
        return self

    def shuffle_grouping(self, source: str, stream: str = "default") -> "BoltDeclarer":
        return self._subscribe(source, stream, ShuffleGrouping())

    def fields_grouping(
        self, source: str, positions: Sequence[int], stream: str = "default"
    ) -> "BoltDeclarer":
        return self._subscribe(source, stream, FieldsGrouping(*positions))

    def all_grouping(self, source: str, stream: str = "default") -> "BoltDeclarer":
        return self._subscribe(source, stream, AllGrouping())

    def global_grouping(self, source: str, stream: str = "default") -> "BoltDeclarer":
        return self._subscribe(source, stream, GlobalGrouping())

    def direct_grouping(self, source: str, stream: str = "default") -> "BoltDeclarer":
        return self._subscribe(source, stream, DirectGrouping())


@dataclass
class Topology:
    """A validated, immutable topology ready for :class:`LocalCluster`."""

    spouts: Dict[str, Spout]
    bolts: Dict[str, BoltFactory]
    parallelism: Dict[str, int]
    subscriptions: List[Subscription]

    def subscribers(self, source: str, stream: str) -> List[Subscription]:
        return [
            s
            for s in self.subscriptions
            if s.source == source and s.stream == stream
        ]

    def components(self) -> List[str]:
        return list(self.spouts) + list(self.bolts)

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable wiring digest (trace headers, tooling)."""
        return {
            "components": {
                name: self.parallelism[name] for name in self.components()
            },
            "edges": [
                {
                    "source": s.source,
                    "stream": s.stream,
                    "destination": s.destination,
                    "grouping": s.grouping.kind,
                }
                for s in self.subscriptions
            ],
        }


class TopologyBuilder:
    """Declare spouts, bolts and groupings, then :meth:`build`."""

    def __init__(self) -> None:
        self._spouts: Dict[str, Spout] = {}
        self._bolts: Dict[str, BoltFactory] = {}
        self._parallelism: Dict[str, int] = {}
        self._subscriptions: List[Subscription] = []

    def set_spout(self, name: str, spout: Spout) -> None:
        """Register a spout (spouts always run as a single task — the
        routing schemes under evaluation need a totally ordered input)."""
        self._check_fresh(name)
        self._spouts[name] = spout
        self._parallelism[name] = 1

    def set_bolt(
        self, name: str, factory: BoltFactory, parallelism: int = 1
    ) -> BoltDeclarer:
        self._check_fresh(name)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self._bolts[name] = factory
        self._parallelism[name] = parallelism
        return BoltDeclarer(self, name)

    def build(self) -> Topology:
        """Validate wiring and freeze the topology."""
        names = set(self._spouts) | set(self._bolts)
        for sub in self._subscriptions:
            if sub.source not in names:
                raise ValueError(f"subscription from unknown component {sub.source!r}")
            if sub.destination not in self._bolts:
                raise ValueError(f"subscription to unknown bolt {sub.destination!r}")
        for bolt in self._bolts:
            if not any(s.destination == bolt for s in self._subscriptions):
                raise ValueError(f"bolt {bolt!r} subscribes to nothing")
        return Topology(
            spouts=dict(self._spouts),
            bolts=dict(self._bolts),
            parallelism=dict(self._parallelism),
            subscriptions=list(self._subscriptions),
        )

    def _check_fresh(self, name: str) -> None:
        if name in self._spouts or name in self._bolts:
            raise ValueError(f"component {name!r} already declared")
