"""The discrete-event cluster: deterministic execution of a topology.

Execution model
---------------
Each task is single-threaded. A tuple delivered at simulated time ``t``
to a task whose previous work ends at ``busy_until`` starts processing
at ``max(t, busy_until)`` and occupies the task for
``work_units × seconds_per_unit`` seconds, where ``work_units`` is the
tuple-handling overhead plus everything the bolt charged during
``execute``. Emitted tuples leave when processing ends and arrive after
the network delay for their serialized size. Deliveries to one task are
processed in delivery order (FIFO, ties broken by a global sequence
number), so the whole simulation is a deterministic function of the
topology and the input stream.

Queueing is therefore real: if tuples arrive faster than a task can
process them, its backlog — and the end-to-end latency — grows, exactly
as on a saturated Storm worker. ``ClusterReport.capacity_throughput``
reads the bottleneck directly as ``records / busiest-task busy-time``.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.observer import RunObserver
from repro.storm.components import Bolt, OutputCollector, Spout, TopologyContext
from repro.storm.costmodel import CostModel, NetworkModel
from repro.storm.metrics import ClusterReport, MetricsRegistry, build_report
from repro.storm.topology import Topology
from repro.storm.tuples import StormTuple, payload_bytes

TaskKey = Tuple[str, int]


class _Executor:
    """One task: a component instance plus its scheduling state."""

    __slots__ = ("key", "instance", "ctx", "collector", "busy_until", "end_times")

    def __init__(
        self,
        key: TaskKey,
        instance: Bolt,
        ctx: TopologyContext,
        collector: OutputCollector,
    ):
        self.key = key
        self.instance = instance
        self.ctx = ctx
        self.collector = collector
        self.busy_until = 0.0
        #: Monotone list of processing-completion times; used to compute
        #: the queue depth at any delivery time by binary search.
        self.end_times: List[float] = []


class LocalCluster:
    """Runs a :class:`~repro.storm.topology.Topology` to completion.

    Parameters
    ----------
    cost:
        Work-unit prices; see :class:`~repro.storm.costmodel.CostModel`.
    network:
        Message latency/bandwidth model.
    max_events:
        Safety valve against runaway topologies (events processed beyond
        this raise ``RuntimeError``).
    observer:
        Optional :class:`~repro.obs.observer.RunObserver` switching on
        tuple tracing and/or the busy/idle timeline for this cluster's
        runs; the run's metrics registry is attached to it at start.
    """

    def __init__(
        self,
        cost: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
        max_events: int = 200_000_000,
        observer: Optional[RunObserver] = None,
    ):
        self.cost = cost if cost is not None else CostModel()
        self.network = network if network is not None else NetworkModel()
        self.max_events = max_events
        self.observer = observer
        self._tracer = observer.tracer if observer is not None else None
        self._timeline = observer.timeline if observer is not None else None
        self._trace_key = observer.trace_key if observer is not None else None
        self._health = observer.health if observer is not None else None

    def run(
        self,
        topology: Topology,
        join_component: str = "join",
        labels: Optional[Dict[str, str]] = None,
    ) -> ClusterReport:
        """Execute the topology until every event drains; return the report.

        ``labels`` (method, corpus, …) are stamped on every series of
        the run's exportable metrics registry.
        """
        wall_start = time.perf_counter()
        registry = MetricsRegistry(labels=labels)
        if self.observer is not None:
            self.observer.attach(
                registry.obs,
                {
                    "topology": topology.describe(),
                    "join_component": join_component,
                    "labels": dict(labels or {}),
                },
            )
        executors = self._build_executors(topology, registry)

        heap: List[Tuple[float, int, int, Any]] = []
        # Per-channel FIFO state: last delivery time per (source task →
        # destination task) link, mirroring a TCP connection — a later
        # message never overtakes an earlier one on the same link.
        self._channel_clock: Dict[Tuple[str, int, str, int], float] = {}
        seq = 0
        # Event kinds: 0 = spout emission due, 1 = tuple delivery.
        spout_iters: Dict[str, Iterator] = {}
        source_records = 0
        first_source: Optional[float] = None

        for name, spout in topology.spouts.items():
            iterator = iter(spout.emissions())
            spout_iters[name] = iterator
            first = next(iterator, None)
            if first is not None:
                t, stream, values = first
                heapq.heappush(heap, (t, seq, 0, (name, stream, values)))
                seq += 1

        last_time = 0.0
        events = 0
        while heap:
            events += 1
            if events > self.max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={self.max_events}; "
                    "topology is likely emitting in a cycle"
                )
            when, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                name, stream, values = payload
                source_records += 1
                if first_source is None:
                    first_source = when
                last_time = max(last_time, when)
                tup = StormTuple(stream, values, name, 0, when)
                if self._tracer is not None:
                    trace_id = self._trace_key(stream, values)
                    if self._tracer.sampled(trace_id):
                        self._tracer.hop(
                            trace_id, name, 0, stream,
                            enter=when, start=when, end=when, name="emit",
                        )
                seq = self._route(topology, executors, registry, heap, seq, tup, None)
                nxt = next(spout_iters[name], None)
                if nxt is not None:
                    t, nstream, nvalues = nxt
                    if t < when:
                        raise ValueError(
                            f"spout {name!r} emitted out of order: {t} after {when}"
                        )
                    heapq.heappush(heap, (t, seq, 0, (name, nstream, nvalues)))
                    seq += 1
            else:
                dest_key, tup = payload
                seq, end = self._process(
                    executors[dest_key], tup, when, topology, executors, registry, heap, seq
                )
                last_time = max(last_time, end)

        # End-of-stream flushes (may emit; drain whatever they produce).
        for key in sorted(executors):
            executor = executors[key]
            if isinstance(executor.instance, Bolt):
                executor.ctx.now = last_time
                executor.ctx.pending_units = 0.0
                executor.instance.finish()
                for _stream, values, _direct in executor.collector.pending:
                    executor.ctx.pending_units += (
                        self.cost.emit_overhead
                        + self.cost.emit_per_byte * payload_bytes(values)
                    )
                flush_tuples = self._drain(executor, last_time)
                for tup in flush_tuples:
                    seq = self._route(topology, executors, registry, heap, seq, tup, None)
        while heap:
            when, _, kind, payload = heapq.heappop(heap)
            if kind != 1:  # pragma: no cover - spouts are exhausted here
                continue
            dest_key, tup = payload
            seq, end = self._process(
                executors[dest_key], tup, when, topology, executors, registry, heap, seq
            )
            last_time = max(last_time, end)

        if self._health is not None:
            self._health.finalize(
                registry, last_time, join_component=join_component
            )
        makespan = last_time - (first_source or 0.0)
        return build_report(
            registry,
            records=source_records,
            makespan=max(makespan, 0.0),
            join_component=join_component,
            wall_clock_seconds=time.perf_counter() - wall_start,
        )

    # -- internals ---------------------------------------------------------
    def _build_executors(
        self, topology: Topology, registry: MetricsRegistry
    ) -> Dict[TaskKey, _Executor]:
        executors: Dict[TaskKey, _Executor] = {}
        for name, factory in topology.bolts.items():
            num_tasks = topology.parallelism[name]
            for index in range(num_tasks):
                ctx = TopologyContext(
                    component=name,
                    task_index=index,
                    num_tasks=num_tasks,
                    cost=self.cost,
                    metrics=registry.task(name, index),
                    registry=registry,
                    health=self._health,
                )
                collector = OutputCollector()
                instance = factory(index)
                instance.prepare(ctx, collector)
                executors[(name, index)] = _Executor(
                    (name, index), instance, ctx, collector
                )
        return executors

    def _process(
        self,
        executor: _Executor,
        tup: StormTuple,
        deliver_time: float,
        topology: Topology,
        executors: Dict[TaskKey, _Executor],
        registry: MetricsRegistry,
        heap: List,
        seq: int,
    ) -> Tuple[int, float]:
        """Run one tuple through a bolt; schedule its emissions."""
        metrics = executor.ctx.metrics
        queue_depth = len(executor.end_times) - bisect_right(
            executor.end_times, deliver_time
        )
        if queue_depth > metrics.peak_queue:
            metrics.peak_queue = queue_depth
        if self._health is not None:
            self._health.on_queue_depth(
                executor.key[0], executor.key[1], deliver_time, queue_depth
            )

        trace_id: Optional[int] = None
        if self._tracer is not None:
            candidate = self._trace_key(tup.stream, tup.values)
            if self._tracer.sampled(candidate):
                trace_id = candidate

        start = max(deliver_time, executor.busy_until)
        executor.ctx.now = start
        executor.ctx.pending_units = (
            self.cost.tuple_overhead
            + self.cost.tuple_per_byte * payload_bytes(tup.values)
        )
        if trace_id is not None:
            executor.ctx._begin_trace(self._tracer, trace_id, tup.stream)
        executor.instance.execute(tup)
        emit_units = 0.0
        for _stream, values, _direct in executor.collector.pending:
            emit_units += self.cost.emit_overhead
            emit_units += self.cost.emit_per_byte * payload_bytes(values)
        executor.ctx.pending_units += emit_units
        duration = self.cost.seconds(executor.ctx.pending_units)
        end = start + duration
        executor.busy_until = end
        executor.end_times.append(end)
        if trace_id is not None:
            notes = executor.ctx._end_trace()
            self._tracer.hop(
                trace_id,
                executor.key[0],
                executor.key[1],
                tup.stream,
                enter=deliver_time,
                start=start,
                end=end,
                notes=notes,
            )
        if self._timeline is not None:
            self._timeline.record(executor.key[0], executor.key[1], start, end)

        metrics.tuples_in += 1
        metrics.work_units += executor.ctx.pending_units
        metrics.busy_seconds += duration

        for out in self._drain(executor, end):
            seq = self._route(topology, executors, registry, heap, seq, out, None)
        return seq, end

    def _drain(self, executor: _Executor, emit_time: float) -> List[StormTuple]:
        component, task_index = executor.key
        return [
            StormTuple(stream, values, component, task_index, emit_time)
            if direct is None
            else _DirectTuple(stream, values, component, task_index, emit_time, direct)
            for stream, values, direct in executor.collector.drain()
        ]

    def _route(
        self,
        topology: Topology,
        executors: Dict[TaskKey, _Executor],
        registry: MetricsRegistry,
        heap: List,
        seq: int,
        tup: StormTuple,
        _unused,
    ) -> int:
        """Fan a tuple out to every subscriber per its grouping."""
        direct_task = getattr(tup, "direct_task", None)
        subs = topology.subscribers(tup.source_component, tup.stream)
        if not subs:
            return seq
        size = payload_bytes(tup.values)
        producer = registry.task(tup.source_component, tup.source_task)
        for sub in subs:
            num_tasks = topology.parallelism[sub.destination]
            targets = sub.grouping.targets(
                tup.values, tup.source_task, num_tasks, direct_task, seq
            )
            channel = registry.channel(tup.source_component, sub.destination)
            for target in targets:
                delay = self.network.delivery_delay(size)
                link = (tup.source_component, tup.source_task, sub.destination, target)
                arrival = max(
                    tup.emit_time + delay, self._channel_clock.get(link, 0.0)
                )
                self._channel_clock[link] = arrival
                channel.messages += 1
                channel.bytes += size
                producer.tuples_out += 1
                heapq.heappush(
                    heap,
                    (arrival, seq, 1, ((sub.destination, target), tup)),
                )
                seq += 1
        return seq


class _DirectTuple(StormTuple):
    """A tuple carrying its direct-grouping destination task."""

    # StormTuple is a frozen dataclass; extend via __new__-free subclass
    # holding the extra attribute through object.__setattr__ in __init__.
    def __init__(self, stream, values, source_component, source_task, emit_time, direct_task):
        super().__init__(stream, values, source_component, source_task, emit_time)
        object.__setattr__(self, "direct_task", direct_task)
