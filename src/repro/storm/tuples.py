"""Tuples: the unit of data exchanged between tasks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.records import Record


@dataclass(frozen=True)
class StormTuple:
    """An immutable tuple flowing through the topology.

    Attributes
    ----------
    stream:
        Logical stream id within the source component (``"default"``
        unless the component declares more).
    values:
        The payload fields.
    source_component / source_task:
        Provenance, for metrics and debugging.
    emit_time:
        Simulated time at which the producer finished emitting it.
    """

    stream: str
    values: Tuple[Any, ...]
    source_component: str
    source_task: int
    emit_time: float

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)


def payload_bytes(values: Tuple[Any, ...]) -> int:
    """Estimated serialized size of a tuple payload.

    Mirrors a compact binary wire format: 4 bytes per int/float field,
    records as an id + length header + 4 bytes per token, strings as
    their UTF-8 length, plus a small per-field tag. The absolute scale
    only matters relative to the network's ``bytes_per_second``.
    """
    total = 0
    for value in values:
        total += 1  # field tag
        if isinstance(value, Record):
            total += 12 + 4 * len(value.tokens)  # rid + timestamp + tokens
        elif isinstance(value, bool):
            total += 1
        elif isinstance(value, (int, float)):
            total += 4
        elif isinstance(value, str):
            total += len(value.encode("utf-8"))
        elif isinstance(value, (tuple, list)):
            total += 4 + 4 * len(value)
        else:
            total += 8  # opaque reference
    return total
