"""Spout / Bolt component model and the output collector.

Mirrors Storm's programming model: a *spout* is a source of tuples, a
*bolt* consumes tuples and may emit new ones. Each component runs as
``parallelism`` independent *tasks*; a task is single-threaded and owns
private state. Bolts interact with the runtime through two handles given
to :meth:`Bolt.prepare`:

* :class:`TopologyContext` — identity, cost charging, counters, clock;
* :class:`OutputCollector` — emitting tuples downstream.

Cost charging is the heart of the simulation: a bolt *must* charge the
work it performs (``ctx.charge("posting_scan", n)``) so the executor can
occupy the task for the corresponding simulated time. The join bolts in
:mod:`repro.core` charge every operation they perform.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.storm.costmodel import CostModel
from repro.storm.metrics import MetricsRegistry, TaskMetrics
from repro.storm.tuples import StormTuple


class TopologyContext:
    """Runtime handle for one task: identity, cost model, metrics, clock."""

    def __init__(
        self,
        component: str,
        task_index: int,
        num_tasks: int,
        cost: CostModel,
        metrics: TaskMetrics,
        registry: MetricsRegistry,
        health=None,
    ):
        self.component = component
        self.task_index = task_index
        self.num_tasks = num_tasks
        self.cost = cost
        self.metrics = metrics
        self._registry = registry
        #: Optional :class:`repro.obs.health.HealthMonitor` receiving
        #: named signals from this task (None = monitoring off).
        self._health = health
        #: Simulated time at which the current tuple's processing began.
        #: Maintained by the executor.
        self.now: float = 0.0
        #: Work units accumulated for the tuple being processed.
        self.pending_units: float = 0.0
        # Tracing state for the tuple being processed (set by the
        # executor only when the tuple is sampled).
        self._tracer = None
        self._trace_id: Optional[int] = None
        self._trace_stream: str = ""
        self._trace_notes: Dict[str, Any] = {}

    def charge(self, operation: str, count: float = 1.0) -> None:
        """Charge ``count`` occurrences of a cost-model operation.

        Also counted under ``op:<operation>`` so experiments can report
        exact operation totals (postings scanned, tokens compared, …).
        """
        self.pending_units += getattr(self.cost, operation) * count
        self.metrics.add_counter("op:" + operation, count)

    def charge_units(self, units: float) -> None:
        """Charge raw work units (for costs outside the named operations)."""
        self.pending_units += units

    def add_counter(self, name: str, amount: float = 1.0) -> None:
        """Bump an algorithmic counter (candidates, verifications, …)."""
        self.metrics.add_counter(name, amount)

    def observe_latency(self, seconds: float) -> None:
        """Record one end-to-end latency sample."""
        self._registry.observe_latency(seconds)

    def signal(self, name: str, value: float) -> None:
        """Report a named health signal (no-op without a monitor).

        Stamped with this task's identity and the current simulated
        time; see :class:`repro.obs.health.HealthMonitor` for the
        signals the detectors understand.
        """
        if self._health is not None:
            self._health.on_signal(
                self.component, self.task_index, self.now, name, value
            )

    @property
    def obs(self):
        """The run's labeled metrics registry (for bolt-level series)."""
        return self._registry.obs

    # -- tracing ------------------------------------------------------------
    def _begin_trace(self, tracer, trace_id: int, stream: str) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._trace_stream = stream
        self._trace_notes = {}

    def _end_trace(self) -> Dict[str, Any]:
        notes, self._trace_notes = self._trace_notes, {}
        self._tracer = None
        self._trace_id = None
        return notes

    def trace_note(self, **notes: Any) -> None:
        """Attach facts to the current hop span (no-op when unsampled)."""
        if self._tracer is not None:
            self._trace_notes.update(notes)

    @property
    def trace_id(self) -> Optional[int]:
        """Trace id of the tuple being executed (None when unsampled)."""
        return self._trace_id

    @contextmanager
    def trace_child(self, name: str, only_for: Optional[int] = None):
        """Record a child span for a phase of the current ``execute``.

        Timestamps derive from the cost-model charges: the phase's
        simulated window is ``now + seconds(pending-units-at-enter)``
        to ``now + seconds(pending-units-at-exit)``, so span durations
        are exactly the simulated time the charged work occupies.
        Yields a dict the caller may fill with span notes. Cheap no-op
        when the current tuple is not sampled, or when ``only_for`` is
        given and names a different trace than the executing tuple's —
        the guard bolts use when they process buffered work that may
        not belong to the tuple currently executing.
        """
        if self._tracer is None or self._trace_id is None:
            yield {}
            return
        if only_for is not None and only_for != self._trace_id:
            yield {}
            return
        notes: Dict[str, Any] = {}
        enter = self.now + self.cost.seconds(self.pending_units)
        try:
            yield notes
        finally:
            end = self.now + self.cost.seconds(self.pending_units)
            self._tracer.hop(
                self._trace_id,
                self.component,
                self.task_index,
                self._trace_stream,
                enter=enter,
                start=enter,
                end=end,
                name=name,
                notes=notes,
            )


class OutputCollector:
    """Collects emissions from the current ``execute`` call.

    The executor drains :attr:`pending` after each call and schedules
    the deliveries; bolts never see the event loop.
    """

    def __init__(self) -> None:
        self.pending: List[Tuple[str, Tuple[Any, ...], Optional[int]]] = []

    def emit(
        self,
        values: Tuple[Any, ...],
        stream: str = "default",
        direct_task: Optional[int] = None,
    ) -> None:
        """Emit a tuple on ``stream``; ``direct_task`` targets one task
        of every direct-grouped subscriber."""
        self.pending.append((stream, tuple(values), direct_task))

    def drain(self) -> List[Tuple[str, Tuple[Any, ...], Optional[int]]]:
        emitted, self.pending = self.pending, []
        return emitted


class Spout:
    """A finite source of timestamped tuples.

    Subclasses implement :meth:`emissions`, yielding
    ``(event_time, stream, values)`` triples in non-decreasing event
    time. Spouts are free sources: they charge no processing cost (the
    paper's spouts replay pre-loaded data; ingestion is never the
    bottleneck under study).
    """

    def emissions(self) -> Iterator[Tuple[float, str, Tuple[Any, ...]]]:
        raise NotImplementedError


class Bolt:
    """Base class for processing components.

    Lifecycle: ``prepare`` once per task, ``execute`` per input tuple,
    ``finish`` once after the stream drains (for end-of-run flushes).
    """

    ctx: TopologyContext
    collector: OutputCollector

    def prepare(self, ctx: TopologyContext, collector: OutputCollector) -> None:
        self.ctx = ctx
        self.collector = collector

    def execute(self, tup: StormTuple) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """Hook called once when the topology drains; default no-op."""
