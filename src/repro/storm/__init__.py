"""A Storm-like distributed stream-processing simulator.

The paper evaluates on Apache Storm: a topology of spouts and bolts,
each component running as parallel *tasks*, connected by stream
*groupings*. This subpackage reproduces that execution model as a
deterministic discrete-event simulator:

* :mod:`repro.storm.topology` — declare components, parallelism and
  groupings (shuffle / fields / all / direct / global), Storm-style.
* :mod:`repro.storm.components` — ``Spout`` / ``Bolt`` base classes and
  the ``OutputCollector``.
* :mod:`repro.storm.cluster` — ``LocalCluster``: the event loop. Each
  task is single-threaded; a tuple's processing occupies its task for
  ``work_units × seconds_per_unit`` of simulated time, so queueing,
  bottlenecks and load imbalance emerge exactly as on a real cluster.
* :mod:`repro.storm.costmodel` — the work-unit prices bolts charge for
  their operations (token comparisons, postings scanned, inserts, …).
* :mod:`repro.storm.network` — per-channel message/byte accounting and
  delivery latency.
* :mod:`repro.storm.metrics` — counters, busy time, queue peaks and
  latency quantiles, aggregated into a ``ClusterReport``.

Why a simulator (and not PyFlink/real Storm): the reproduction bands for
this paper note that a Python-runtime throughput evaluation would be
unrepresentative. The simulator instead charges each algorithm its
*operation counts* — candidates generated, tokens merged, postings
touched, messages shipped — which are exactly the quantities the paper's
algorithmic contributions reduce. Relative throughput, communication
cost and load balance are therefore preserved; see DESIGN.md §5.
"""

from repro.storm.cluster import LocalCluster
from repro.storm.components import Bolt, OutputCollector, Spout
from repro.storm.costmodel import CostModel
from repro.storm.metrics import ClusterReport, MetricsRegistry, TaskMetrics
from repro.storm.topology import Grouping, Topology, TopologyBuilder
from repro.storm.tuples import StormTuple

__all__ = [
    "Bolt",
    "ClusterReport",
    "CostModel",
    "Grouping",
    "LocalCluster",
    "MetricsRegistry",
    "OutputCollector",
    "Spout",
    "StormTuple",
    "TaskMetrics",
    "Topology",
    "TopologyBuilder",
]
