"""The cost model: what each join operation costs in simulated time.

Bolts charge *work units* for the operations they perform; an executor
occupies its task for ``units × seconds_per_unit`` of simulated time per
tuple. The defaults below are calibrated to a commodity ~3 GHz core
running tuned native code, the setting of the paper's Storm cluster:

* one work unit ≈ 10 ns (``seconds_per_unit = 1e-8``), i.e. a handful of
  instructions — one token comparison in a merge loop;
* hash/index operations cost a few units (hashing + pointer chasing);
* per-tuple overheads (deserialization, queue transfer) cost hundreds of
  units, matching the tuple-handling overhead measured for Storm.

Absolute throughput numbers scale inversely with ``seconds_per_unit``;
*relative* numbers across methods — the quantity the paper's evaluation
is about — depend only on the ratios, which is why the ratios are the
documented, test-pinned part of this model. Experiment E2's shape
(length-based beating prefix-based by growing factors as θ falls) is
robust to ±4× perturbations of any single ratio; ``benchmarks``
re-derives the headline with a perturbed model as a sensitivity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Work-unit prices for the operations of a distributed stream join.

    All values are in abstract work units; ``seconds_per_unit`` converts
    to simulated seconds.
    """

    seconds_per_unit: float = 1e-8

    #: Fixed cost of receiving + deserializing one tuple at a task.
    tuple_overhead: float = 300.0
    #: Per-byte deserialization cost on receive (~0.8 GB/s at 10 ns/unit).
    tuple_per_byte: float = 0.12
    #: Fixed cost of serializing + enqueuing one emitted tuple (the
    #: receiver-side handling is the larger ``tuple_overhead``).
    emit_overhead: float = 80.0
    #: Per-byte serialization cost on emit (~1.2 GB/s at 10 ns/unit).
    emit_per_byte: float = 0.08
    #: Cost of routing one record at the dispatcher (length lookup or
    #: prefix hashing is charged separately per token).
    route_record: float = 50.0
    #: Cost of hashing one prefix token during prefix-based routing.
    route_token: float = 8.0

    #: One step of a sorted-merge token comparison (verification loop).
    token_compare: float = 1.0
    #: Probing the inverted index for one token (hash lookup).
    index_lookup: float = 6.0
    #: Scanning one posting (length check + position filter + hash-set
    #: candidate bookkeeping).
    posting_scan: float = 4.0
    #: Admitting one candidate pair into the verification set.
    candidate_admit: float = 10.0
    #: Inserting one posting into the inverted index.
    posting_insert: float = 8.0
    #: Removing one expired posting (lazy expiration).
    posting_expire: float = 4.0
    #: Emitting one verified result pair (bookkeeping only; the emit
    #: tuple itself also pays ``emit_overhead``).
    result_emit: float = 12.0
    #: Maintaining bundle state for one record (representative diff).
    bundle_maintain: float = 20.0

    def seconds(self, units: float) -> float:
        """Convert work units to simulated seconds."""
        return units * self.seconds_per_unit

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with some prices replaced (sensitivity analyses)."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """All prices, for reports."""
        return {
            name: getattr(self, name)
            for name in (
                "seconds_per_unit",
                "tuple_overhead",
                "tuple_per_byte",
                "emit_overhead",
                "emit_per_byte",
                "route_record",
                "route_token",
                "token_compare",
                "index_lookup",
                "posting_scan",
                "candidate_admit",
                "posting_insert",
                "posting_expire",
                "result_emit",
                "bundle_maintain",
            )
        }


@dataclass(frozen=True)
class NetworkModel:
    """Delivery latency and bandwidth of the simulated interconnect.

    Defaults model a 10 GbE datacenter fabric: 0.2 ms base latency per
    message hop and ~1 GB/s effective per-link bandwidth. Local
    deliveries (same task) skip the network entirely; deliveries between
    tasks always pay it — the simulator does not model process-local
    shortcuts, matching a Storm deployment where tasks of one component
    spread across hosts.
    """

    base_latency: float = 0.0002
    bytes_per_second: float = 1.0e9

    def delivery_delay(self, num_bytes: int) -> float:
        """Simulated seconds for one message of ``num_bytes``."""
        return self.base_latency + num_bytes / self.bytes_per_second
