"""Metrics: per-task counters, latency quantiles and cluster reports.

Every number the paper's evaluation plots comes out of this module:
throughput (capacity and achieved), communication cost (messages and
bytes), load balance (max/avg busy time across the join tasks), latency
quantiles, and the algorithmic counters (candidates, verifications,
results) behind the ablation experiments.

Every registry also carries an :class:`repro.obs.registry.ObsRegistry`
— the labeled, exportable view of the same numbers. Algorithmic
counters and latency observations stream into it live; structural
task/channel totals are synced by :func:`build_report`, which then
publishes the run-level aggregates too, so a JSON/Prometheus dump of
``registry.obs`` is sufficient to recompute every experiment headline.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import Counter, ObsRegistry


class LatencySampler:
    """Bounded reservoir of latency samples with exact quantiles.

    Keeps up to ``capacity`` samples via systematic sampling (every
    *k*-th observation once full), which is deterministic — a property
    the whole simulator guarantees.
    """

    def __init__(self, capacity: int = 20000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: List[float] = []
        self._seen = 0
        self._stride = 1

    def observe(self, value: float) -> None:
        self._seen += 1
        if self._seen % self._stride:
            return
        self._samples.append(value)
        if len(self._samples) >= self.capacity:
            # Thin by half and double the stride.
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def count(self) -> int:
        """Number of observations (not samples) seen."""
        return self._seen

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the sampled distribution (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0


@dataclass
class TaskMetrics:
    """Counters for one task (one executor) of one component.

    Algorithmic counters double-publish: the local ``counters`` dict
    feeds :func:`build_report`, and each name is also a labeled
    counter in the run's :class:`~repro.obs.registry.ObsRegistry`
    (labels ``component``/``task``), cached per name so the hot path
    pays one dict lookup and one float add.
    """

    component: str
    task_index: int
    tuples_in: int = 0
    tuples_out: int = 0
    work_units: float = 0.0
    busy_seconds: float = 0.0
    peak_queue: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    obs: Optional[ObsRegistry] = field(default=None, repr=False, compare=False)
    _obs_counters: Dict[str, Counter] = field(
        default_factory=dict, repr=False, compare=False
    )

    def add_counter(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount
        if self.obs is not None:
            series = self._obs_counters.get(name)
            if series is None:
                series = self.obs.counter(
                    name, component=self.component, task=self.task_index
                )
                self._obs_counters[name] = series
            series.inc(amount)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)


@dataclass
class ChannelMetrics:
    """Message/byte accounting for one (source component → dest component) edge."""

    source: str
    destination: str
    messages: int = 0
    bytes: int = 0


class MetricsRegistry:
    """All metrics of one cluster run, keyed by task and channel.

    ``labels`` become constant labels (method, corpus, …) on every
    series of the attached :class:`~repro.obs.registry.ObsRegistry`.
    """

    #: Reservoir size shared by the latency sampler and its obs twin,
    #: so both report identical quantiles.
    LATENCY_CAPACITY = 20000

    def __init__(self, labels: Optional[Dict[str, str]] = None) -> None:
        self._tasks: Dict[Tuple[str, int], TaskMetrics] = {}
        self._channels: Dict[Tuple[str, str], ChannelMetrics] = {}
        self.latency = LatencySampler(self.LATENCY_CAPACITY)
        self.obs = ObsRegistry(**(labels or {}))
        self._obs_latency = self.obs.histogram(
            "latency_seconds",
            help="end-to-end record latency (arrival to probe completion)",
            capacity=self.LATENCY_CAPACITY,
        )

    def observe_latency(self, seconds: float) -> None:
        """Record one end-to-end latency sample (report + obs views)."""
        self.latency.observe(seconds)
        self._obs_latency.observe(seconds)

    def task(self, component: str, task_index: int) -> TaskMetrics:
        key = (component, task_index)
        if key not in self._tasks:
            self._tasks[key] = TaskMetrics(component, task_index, obs=self.obs)
        return self._tasks[key]

    def channel(self, source: str, destination: str) -> ChannelMetrics:
        key = (source, destination)
        if key not in self._channels:
            self._channels[key] = ChannelMetrics(source, destination)
        return self._channels[key]

    def tasks_of(self, component: str) -> List[TaskMetrics]:
        return [m for (c, _), m in sorted(self._tasks.items()) if c == component]

    def all_tasks(self) -> List[TaskMetrics]:
        return [m for _, m in sorted(self._tasks.items())]

    def all_channels(self) -> List[ChannelMetrics]:
        return [m for _, m in sorted(self._channels.items())]

    def total_counter(self, name: str, component: Optional[str] = None) -> float:
        tasks = self.tasks_of(component) if component else self.all_tasks()
        return sum(t.counter(name) for t in tasks)

    def busy_by_component(self) -> Dict[str, List[float]]:
        """Busy seconds per task, grouped by component (task order).

        The shared hook for everything that reasons about load shape:
        :func:`build_report` (load balance, per-task busy lists) and
        the :class:`repro.obs.health.HealthMonitor` straggler/skew
        detector read the same grouping.
        """
        grouped: Dict[str, List[float]] = {}
        for task in self.all_tasks():
            grouped.setdefault(task.component, []).append(task.busy_seconds)
        return grouped

    def sync_obs(self) -> ObsRegistry:
        """Publish structural task/channel totals into the obs view.

        Idempotent (gauges are set, channel counters reset to totals),
        so re-building a report never double-counts. The algorithmic
        counters and latency histogram stream in live and need no sync.
        """
        task_gauges = (
            ("task_tuples_in", "tuples delivered to the task"),
            ("task_tuples_out", "tuples the task emitted downstream"),
            ("task_work_units", "cost-model work units charged"),
            ("task_busy_seconds", "simulated seconds the task was busy"),
            ("task_peak_queue", "peak input-queue depth observed"),
        )
        for task in self.all_tasks():
            labels = {"component": task.component, "task": task.task_index}
            values = (
                task.tuples_in,
                task.tuples_out,
                task.work_units,
                task.busy_seconds,
                task.peak_queue,
            )
            for (name, help_text), value in zip(task_gauges, values):
                self.obs.gauge(name, help=help_text, **labels).set(value)
        for channel in self.all_channels():
            labels = {"source": channel.source, "destination": channel.destination}
            self.obs.counter(
                "channel_messages", help="messages shipped on the edge", **labels
            ).reset_to(channel.messages)
            self.obs.counter(
                "channel_bytes", help="payload bytes shipped on the edge", **labels
            ).reset_to(channel.bytes)
        return self.obs


@dataclass
class ClusterReport:
    """The digest of one simulated run — the experiments read this.

    Attributes
    ----------
    records:
        Number of source records fed in.
    makespan:
        Simulated time from first arrival to last processed event.
    capacity_throughput:
        ``records / busiest-task busy-time`` — the sustainable input
        rate the topology could absorb, bounded by its bottleneck. This
        is the paper's throughput metric (they push input until
        saturation; saturation is exactly the bottleneck's capacity).
    achieved_throughput:
        ``records / makespan`` at the offered rate of this run.
    messages / bytes:
        Total inter-task traffic (communication cost).
    load_balance:
        max/avg busy time across the join-component tasks; 1.0 is
        perfect balance.
    """

    records: int
    results: int
    makespan: float
    capacity_throughput: float
    achieved_throughput: float
    messages: int
    bytes: int
    load_balance: float
    bottleneck_component: str
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    counters: Dict[str, float]
    per_task_busy: Dict[str, List[float]]
    wall_clock_seconds: float = 0.0
    #: The run's exportable metrics view (set by :func:`build_report`).
    obs: Optional[ObsRegistry] = field(default=None, repr=False, compare=False)

    @property
    def messages_per_record(self) -> float:
        return self.messages / self.records if self.records else 0.0

    @property
    def bytes_per_record(self) -> float:
        return self.bytes / self.records if self.records else 0.0

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def as_row(self) -> Dict[str, object]:
        """Flat row for tabular reports."""
        return {
            "records": self.records,
            "results": self.results,
            "throughput": round(self.capacity_throughput, 1),
            "msgs/rec": round(self.messages_per_record, 2),
            "bytes/rec": round(self.bytes_per_record, 1),
            "balance": round(self.load_balance, 3),
            "lat_p95_ms": round(self.latency_p95 * 1e3, 3),
        }


def build_report(
    registry: MetricsRegistry,
    records: int,
    makespan: float,
    join_component: str,
    wall_clock_seconds: float = 0.0,
) -> ClusterReport:
    """Aggregate a registry into a :class:`ClusterReport`.

    ``join_component`` names the component whose tasks define load
    balance (the parallel join bolts).
    """
    all_tasks = registry.all_tasks()
    busiest = max(all_tasks, key=lambda t: t.busy_seconds, default=None)
    max_busy = busiest.busy_seconds if busiest else 0.0
    capacity = records / max_busy if max_busy > 0 else float("inf")

    per_task_busy = registry.busy_by_component()
    join_busy = per_task_busy.get(join_component, [])
    avg_busy = sum(join_busy) / len(join_busy) if join_busy else 0.0
    balance = (max(join_busy) / avg_busy) if avg_busy > 0 else 1.0

    messages = sum(c.messages for c in registry.all_channels())
    total_bytes = sum(c.bytes for c in registry.all_channels())

    counters: Dict[str, float] = defaultdict(float)
    for task in all_tasks:
        for name, value in task.counters.items():
            counters[name] += value

    obs = registry.sync_obs()
    run_gauges = {
        "run_records": (records, "source records fed into the topology"),
        "run_results": (counters.get("results", 0), "similar pairs reported"),
        "run_makespan_seconds": (makespan, "first arrival to last event"),
        "run_capacity_throughput": (
            capacity,
            "records per second at the bottleneck (records / max task busy)",
        ),
        "run_achieved_throughput": (
            records / makespan if makespan > 0 else float("inf"),
            "records per second at the offered rate",
        ),
        "run_messages_total": (messages, "inter-task messages shipped"),
        "run_bytes_total": (total_bytes, "inter-task payload bytes shipped"),
        "run_load_balance": (
            balance,
            "max/avg busy seconds across the join tasks (1.0 = perfect)",
        ),
    }
    for name, (value, help_text) in run_gauges.items():
        obs.gauge(name, help=help_text).set(value)
    obs.gauge(
        "run_info",
        help="run topology facts carried as labels",
        join_component=join_component,
        bottleneck=busiest.component if busiest else "",
    ).set(1.0)

    return ClusterReport(
        records=records,
        results=int(counters.get("results", 0)),
        makespan=makespan,
        capacity_throughput=capacity,
        achieved_throughput=records / makespan if makespan > 0 else float("inf"),
        messages=messages,
        bytes=total_bytes,
        load_balance=balance,
        bottleneck_component=busiest.component if busiest else "",
        latency_mean=registry.latency.mean(),
        latency_p50=registry.latency.quantile(0.50),
        latency_p95=registry.latency.quantile(0.95),
        latency_p99=registry.latency.quantile(0.99),
        counters=dict(counters),
        per_task_busy=dict(per_task_busy),
        wall_clock_seconds=wall_clock_seconds,
        obs=obs,
    )
