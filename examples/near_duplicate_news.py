"""On-line near-duplicate detection on a bursty news stream.

The paper's motivating application: web documents arrive continuously;
reposts and lightly edited copies must be flagged in real time. This
example runs the full system (bundles + batch verification) on a bursty
synthetic tweet stream under a sliding window, and shows why bundling
matters: bursts of near-identical posts collapse into a few bundles,
keeping the index small.

Run:  python examples/near_duplicate_news.py
"""

from repro import DistributedStreamJoin, JoinConfig
from repro.datasets import synthetic_tweet
from repro.streams.arrival import BurstyArrivals


def run(label: str, use_bundles: bool, stream) -> None:
    config = JoinConfig(
        similarity="jaccard",
        threshold=0.8,
        num_workers=8,
        distribution="length",
        partitioning="load_aware",
        use_bundles=use_bundles,
        bundle_threshold=0.9,
        window_seconds=30.0,  # only recent posts are duplicate partners
    )
    report = DistributedStreamJoin(config).run(stream)
    counters = report.cluster.counters
    print(f"{label:8s}", end="")
    print(f"  duplicates={report.results:6d}", end="")
    print(f"  index postings={int(counters.get('final_postings', 0)):7d}", end="")
    print(f"  scans={int(counters.get('op:posting_scan', 0)):9d}", end="")
    print(f"  p95 latency={report.cluster.latency_p95 * 1e3:7.3f} ms", end="")
    if "final_bundles" in counters:
        print(f"  bundles={int(counters['final_bundles'])}", end="")
    print()


def main() -> None:
    # A flash-crowd arrival process: bursts of 200 posts at 2000/s,
    # with quiet gaps — and a high share of reposts inside bursts.
    stream = synthetic_tweet(
        12_000,
        seed=42,
        duplicate_rate=0.45,
        exact_duplicate_fraction=0.7,
        vocabulary_size=5_000,
        arrivals=BurstyArrivals(burst_rate=2000, burst_len=200, gap=2.0, seed=42),
    )
    stats = stream.statistics()
    print(f"stream: {stats.num_records} posts, avg {stats.avg_size:.1f} tokens, "
          f"vocabulary {stats.vocabulary_size}")
    print()
    run("records", use_bundles=False, stream=stream)
    run("bundles", use_bundles=True, stream=stream)
    print("\nBundling groups repost bursts: fewer postings, fewer scans,")
    print("identical duplicate sets (both rows report the same count).")


if __name__ == "__main__":
    main()
