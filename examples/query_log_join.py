"""Choosing a deployment for a query-log similarity service.

A data-integration team wants on-line detection of similar search
queries (spelling variants, reorderings) over an AOL-like stream. This
example compares the three distribution schemes at the same threshold
and parallelism — the decision the paper's evaluation is about — and
prints the deployment trade-off table.

Run:  python examples/query_log_join.py
"""

from repro.bench import format_table, run_methods, standard_configs
from repro.datasets import synthetic_aol


def main() -> None:
    stream = synthetic_aol(15_000, seed=7, duplicate_rate=0.2)
    stats = stream.statistics()
    print(f"stream: {stats.num_records} queries, avg {stats.avg_size:.1f} tokens\n")

    configs = standard_configs(
        num_workers=8,
        threshold=0.8,
        include=["BRD", "PRE", "LEN-U", "LEN"],
    )
    reports = run_methods(stream, configs)

    rows = []
    for label, report in reports.items():
        rows.append(
            {
                "method": label,
                "similar pairs": report.results,
                "throughput rec/s": round(report.throughput),
                "msgs/record": round(report.messages_per_record, 2),
                "bytes/record": round(report.bytes_per_record, 1),
                "balance max/avg": round(report.load_balance, 2),
                "p95 ms": round(report.cluster.latency_p95 * 1e3, 3),
            }
        )
    print(format_table(rows, title="Deployment comparison (k=8, θ=0.8)"))

    best = max(reports, key=lambda label: reports[label].throughput)
    print(f"\nAll methods return identical pair sets; pick by cost: "
          f"highest sustainable throughput here is {best}.")
    print("Broadcast pays k messages per record; prefix replicates the "
          "index; length-based ships one index copy plus a few probes.")


if __name__ == "__main__":
    main()
