"""Inside the load-aware length partitioner.

The ENRON-like corpus has a log-normal length distribution: most mails
are short, a long tail is huge. Equal-width partitions put nearly all
records (and nearly all join cost) on one worker. This example plans
partitions three ways for the same stream, prints the ranges with their
estimated costs, then validates the estimates against a real simulated
run's per-worker busy times.

Run:  python examples/partition_planning.py
"""

from repro import DistributedStreamJoin, JoinConfig
from repro.bench import format_table
from repro.datasets import synthetic_enron
from repro.partition import (
    JoinCostEstimator,
    LengthHistogram,
    load_aware_partition,
    quantile_partition,
    uniform_partition,
)
from repro.similarity.functions import Jaccard

K = 6
THRESHOLD = 0.8


def describe(label, partition, estimator):
    costs = [estimator.cost(lo, hi) for lo, hi in partition.ranges]
    total = sum(costs)
    rows = [
        {
            "worker": i,
            "lengths": f"[{lo}, {hi}]",
            "est. cost share": f"{cost / total:6.1%}",
        }
        for i, ((lo, hi), cost) in enumerate(zip(partition.ranges, costs))
    ]
    print(format_table(rows, title=f"\n{label} (est. max/avg = "
                                   f"{max(costs) / (total / len(costs)):.2f})"))


def main() -> None:
    stream = synthetic_enron(6_000, seed=3)
    lengths = [len(tokens) for tokens in stream.corpus]
    histogram = LengthHistogram.from_lengths(lengths)
    print(f"lengths: min={histogram.min_length} max={histogram.max_length} "
          f"median≈{sorted(lengths)[len(lengths) // 2]}")

    func = Jaccard(THRESHOLD)
    vocabulary = len({t for tokens in stream.corpus for t in tokens})
    estimator = JoinCostEstimator(histogram, func, vocabulary_size=vocabulary)

    plans = {
        "uniform": uniform_partition(histogram.min_length, histogram.max_length, K),
        "quantile": quantile_partition(histogram, K),
        "load-aware": load_aware_partition(estimator, K),
    }
    for label, partition in plans.items():
        describe(label, partition, estimator)

    # Validate: run the simulator with each plan and compare real balance.
    print("\nmeasured per-worker balance from full simulated runs:")
    for partitioning in ("uniform", "quantile", "load_aware"):
        config = JoinConfig(
            threshold=THRESHOLD, num_workers=K,
            distribution="length", partitioning=partitioning,
        )
        report = DistributedStreamJoin(config).run(stream)
        print(f"  {partitioning:10s} max/avg busy = {report.load_balance:.2f}  "
              f"throughput = {report.throughput:,.0f} rec/s")


if __name__ == "__main__":
    main()
