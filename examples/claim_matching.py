"""Two-stream join: match incoming posts against a claims database feed.

A fact-checking pipeline: stream L carries fact-checked claims as they
are published; stream R carries social posts. Every post must be
matched against recent claims (and vice versa — a new claim should
surface recent posts), but post–post and claim–claim pairs are noise.
That is the two-stream (R–S) cross join — `repro.core.two_stream`.

Run:  python examples/claim_matching.py
"""

from repro.core.config import JoinConfig
from repro.core.two_stream import DistributedTwoStreamJoin
from repro.datasets import synthetic_tweet
from repro.datasets.generators import CorpusSpec, normal_lengths, stream_from_spec


def main() -> None:
    # Claims: longer, curated statements at a slow rate.
    claims = stream_from_spec(
        CorpusSpec(
            name="claims",
            vocabulary_size=5_000,
            length_model=normal_lengths(mean=14, stddev=3, lo=6, hi=25),
            duplicate_rate=0.0,
        ),
        n_records=1_500,
        seed=5,
        rate=50.0,
    )
    # Posts: short, bursty, full of reposts — same token universe.
    posts = synthetic_tweet(
        6_000, seed=5, vocabulary_size=5_000, duplicate_rate=0.35, rate=400.0
    )

    config = JoinConfig(
        similarity="jaccard",
        threshold=0.6,
        num_workers=8,
        distribution="length",
        window_seconds=20.0,   # posts match claims published recently
        collect_pairs=True,
    )
    report, pairs = DistributedTwoStreamJoin(config).run(claims, posts)

    print(f"claims={len(claims)}  posts={len(posts)}")
    print(f"cross matches: {report.results}")
    print(f"sustainable rate: {report.throughput:,.0f} records/s, "
          f"p95 latency {report.cluster.latency_p95 * 1e3:.2f} ms")

    by_claim = {}
    for (side_l, claim_rid), (side_r, post_rid), similarity in pairs:
        by_claim.setdefault(claim_rid, []).append((similarity, post_rid))
    top = sorted(by_claim.items(), key=lambda kv: -len(kv[1]))[:5]
    print("\nmost-matched claims:")
    for claim_rid, matches in top:
        best = max(matches)[0]
        print(f"  claim {claim_rid}: {len(matches)} matching posts "
              f"(best similarity {best:.2f})")
    # Sanity: every reported pair really is cross-stream.
    assert all(a[0] == "L" and b[0] == "R" for a, b, _ in pairs)


if __name__ == "__main__":
    main()
