"""Quickstart: join a stream of raw text records, end to end.

Shows the whole public pipeline:

1. tokenize raw strings and build the global token order,
2. wrap the canonical records in a timestamped stream,
3. run the distributed streaming join (length-based distribution,
   load-aware partitioning — the paper's full system),
4. read the results and the cluster-level metrics.

Run:  python examples/quickstart.py
"""

from repro import DistributedStreamJoin, JoinConfig
from repro.similarity.ordering import TokenDictionary
from repro.similarity.tokenizers import WordTokenizer
from repro.streams.arrival import ConstantRate
from repro.streams.stream import RecordStream

DOCUMENTS = [
    "storm surge warning issued for the gulf coast",
    "gulf coast storm surge warning issued",          # near-duplicate of 0
    "new similarity join algorithm beats baselines",
    "a streaming similarity join algorithm beats all baselines",
    "cooking tips for perfect pasta every time",
    "storm surge warning issued for the gulf coast today",  # near-dup of 0
    "breaking gulf coast storm warning",
    "perfect pasta cooking tips every single time",   # near-dup of 4
]


def main() -> None:
    # 1. Tokenize and canonicalize under one global token order.
    tokenizer = WordTokenizer()
    raw = [tokenizer(text) for text in DOCUMENTS]
    dictionary = TokenDictionary.from_corpus(raw)
    corpus = [dictionary.canonicalize(tokens) for tokens in raw]

    # 2. A stream arriving at 100 records/second.
    stream = RecordStream(corpus, arrivals=ConstantRate(100.0), name="news")

    # 3. The paper's full system on 4 simulated workers.
    config = JoinConfig(
        similarity="jaccard",
        threshold=0.6,
        num_workers=4,
        distribution="length",
        partitioning="load_aware",
        collect_pairs=True,
    )
    report = DistributedStreamJoin(config).run(stream)

    # 4. Results: each pair is (later_rid, earlier_rid, similarity).
    print(f"method={report.method}  pairs found={report.results}")
    for later, earlier, similarity in sorted(report.pairs, key=lambda p: -p[2]):
        print(f"  sim={similarity:.2f}")
        print(f"    [{earlier}] {DOCUMENTS[earlier]}")
        print(f"    [{later}] {DOCUMENTS[later]}")

    print("\ncluster metrics:")
    print(f"  sustainable throughput : {report.throughput:,.0f} records/s")
    print(f"  messages per record    : {report.messages_per_record:.2f}")
    print(f"  load balance (max/avg) : {report.load_balance:.2f}")
    print(f"  p95 latency            : {report.cluster.latency_p95 * 1e3:.3f} ms")
    print(f"  length partition       : {report.partition.describe()}")


if __name__ == "__main__":
    main()
